// Package alltoall implements the classic all-to-all heartbeat Omega used
// as the paper's "expensive" baseline.
//
// Every alive process broadcasts an ALIVE heartbeat every η and monitors
// every other process with an adaptive timeout; the leader is the smallest
// process id not currently suspected. The algorithm implements Omega when
// all links between correct processes are eventually timely (the strong
// assumption the paper wants to relax), and it is maximally expensive in
// the paper's metric: all n alive processes send forever, using n(n−1)
// links — compare experiment E1/E5 against internal/core.
package alltoall

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/node"
	"repro/internal/obs"
)

// KindAlive tags heartbeat broadcasts.
const KindAlive = "ALIVE"

// kindAliveID is interned once so the per-η broadcast never hashes a string.
var kindAliveID = obs.Intern(KindAlive)

// AliveMsg is the periodic heartbeat.
type AliveMsg struct{}

// Kind implements node.Message.
func (AliveMsg) Kind() string { return KindAlive }

// KindID implements node.KindIDer.
func (AliveMsg) KindID() obs.Kind { return kindAliveID }

const timerHeartbeat = "alltoall/hb"

func monitorKey(q node.ID) string { return fmt.Sprintf("alltoall/mon/%d", q) }

// Config parameterizes the detector. Zero values select defaults.
type Config struct {
	// Eta is the heartbeat period (default 10ms).
	Eta time.Duration
	// BaseTimeout is the initial suspicion timeout (default 3·Eta).
	BaseTimeout time.Duration
	// Increment is added to a process's timeout on each false suspicion
	// (default Eta).
	Increment time.Duration
}

func (c *Config) fill() {
	if c.Eta <= 0 {
		c.Eta = 10 * time.Millisecond
	}
	if c.BaseTimeout <= 0 {
		c.BaseTimeout = 3 * c.Eta
	}
	if c.Increment <= 0 {
		c.Increment = c.Eta
	}
}

// Detector is the all-to-all heartbeat Omega automaton for one process.
type Detector struct {
	cfg  Config
	env  node.Env
	me   node.ID
	n    int
	hist *detector.History

	suspected []bool
	timeout   []time.Duration
	leader    node.ID
}

var _ detector.Omega = (*Detector)(nil)

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, hist: detector.NewHistory(), leader: node.None}
}

// Leader implements detector.Omega.
func (d *Detector) Leader() node.ID { return d.leader }

// History implements detector.Omega.
func (d *Detector) History() *detector.History { return d.hist }

// Suspected reports whether q is currently suspected (test hook).
func (d *Detector) Suspected(q node.ID) bool { return d.suspected[q] }

// Start implements node.Automaton.
func (d *Detector) Start(env node.Env) {
	d.env = env
	d.me = env.ID()
	d.n = env.N()
	d.suspected = make([]bool, d.n)
	d.timeout = make([]time.Duration, d.n)
	for q := 0; q < d.n; q++ {
		d.timeout[q] = d.cfg.BaseTimeout
		if node.ID(q) != d.me {
			env.SetTimer(monitorKey(node.ID(q)), d.timeout[q])
		}
	}
	d.elect()
	env.SetTimer(timerHeartbeat, d.cfg.Eta)
	env.Broadcast(AliveMsg{})
}

// Deliver implements node.Automaton.
func (d *Detector) Deliver(from node.ID, m node.Message) {
	if _, ok := m.(AliveMsg); !ok {
		return
	}
	if d.suspected[from] {
		// False suspicion: forgive and widen the timeout so the same
		// mistake eventually stops happening.
		d.suspected[from] = false
		d.timeout[from] += d.cfg.Increment
	}
	d.env.SetTimer(monitorKey(from), d.timeout[from])
	d.elect()
}

// Tick implements node.Automaton.
func (d *Detector) Tick(key string) {
	if key == timerHeartbeat {
		d.env.SetTimer(timerHeartbeat, d.cfg.Eta)
		d.env.Broadcast(AliveMsg{})
		return
	}
	var q int
	if _, err := fmt.Sscanf(key, "alltoall/mon/%d", &q); err != nil {
		return
	}
	d.suspected[q] = true
	d.elect()
}

// elect sets the leader to the smallest unsuspected id (the local process
// never suspects itself).
func (d *Detector) elect() {
	leader := d.me
	for q := 0; q < d.n; q++ {
		if !d.suspected[q] && node.ID(q) < leader {
			leader = node.ID(q)
			break
		}
	}
	if leader == d.leader {
		return
	}
	d.leader = leader
	d.hist.Record(d.env.Now(), leader)
	d.env.Logf("leader → p%d", leader)
}
