package alltoall

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const (
	ms  = time.Millisecond
	eta = 10 * ms
)

func buildWorld(t *testing.T, n int, seed int64, link network.Profile, gst sim.Time) (*node.World, []*Detector) {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, GST: gst, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*Detector, n)
	for i := range ds {
		ds[i] = New(Config{Eta: eta})
		w.SetAutomaton(node.ID(i), ds[i])
	}
	return w, ds
}

func TestConvergesWithTimelyLinks(t *testing.T) {
	w, ds := buildWorld(t, 5, 1, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	for i, d := range ds {
		if d.Leader() != 0 {
			t.Fatalf("p%d leader = %v, want p0", i, d.Leader())
		}
	}
}

func TestLeaderCrashPromotesNext(t *testing.T) {
	w, ds := buildWorld(t, 5, 2, network.Timely(2*ms), 0)
	w.Start()
	w.CrashAt(0, sim.At(200*ms))
	w.RunFor(time.Second)
	for i := 1; i < 5; i++ {
		if got := ds[i].Leader(); got != 1 {
			t.Fatalf("p%d leader = %v, want p1", i, got)
		}
		if !ds[i].Suspected(0) {
			t.Fatalf("p%d does not suspect crashed p0", i)
		}
	}
}

func TestEveryProcessKeepsSending(t *testing.T) {
	w, _ := buildWorld(t, 6, 3, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	senders := w.Stats.SendersSince(sim.At(900 * ms))
	if len(senders) != 6 {
		t.Fatalf("steady-state senders = %v, want all 6 (all-to-all is not communication-efficient)", senders)
	}
	links := w.Stats.LinksUsedSince(sim.At(900 * ms))
	if links != 30 {
		t.Fatalf("links used = %d, want n(n-1)=30", links)
	}
}

func TestSteadyStateQuadraticMessageRate(t *testing.T) {
	w, _ := buildWorld(t, 5, 4, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	got := w.Stats.MessagesInWindow(sim.At(500*ms), sim.At(500*ms+eta))
	if got != 20 {
		t.Fatalf("messages per η = %d, want n(n-1)=20", got)
	}
}

func TestForgivenessGrowsTimeout(t *testing.T) {
	// Delays near the base timeout cause false suspicions; the adaptive
	// timeout must make them die out so the leader stabilizes.
	w, ds := buildWorld(t, 3, 5, network.Timely(40*ms), 0)
	w.Start()
	w.RunFor(20 * time.Second)
	for i, d := range ds {
		if got := d.Leader(); got != 0 {
			t.Fatalf("p%d leader = %v, want p0 after timeouts adapt", i, got)
		}
	}
	// No leader changes in the final quarter of the run.
	for i, d := range ds {
		if at, _ := d.History().StableSince(); at > sim.At(15*time.Second) {
			t.Fatalf("p%d still flapping at %v", i, at)
		}
	}
}

func TestConvergesAfterGST(t *testing.T) {
	gst := sim.At(300 * ms)
	w, ds := buildWorld(t, 4, 6, network.EventuallyTimely(2*ms, 150*ms, 0.3), gst)
	w.Start()
	w.RunFor(5 * time.Second)
	for i, d := range ds {
		if d.Leader() != 0 {
			t.Fatalf("p%d leader = %v, want p0", i, d.Leader())
		}
	}
}

func TestOscillatesUnderPersistentLoss(t *testing.T) {
	// Fair-lossy links everywhere except p2's output links: the strong
	// all-links assumption is violated, and the all-to-all detector keeps
	// suspecting/forgiving forever — this is the E8 boundary that
	// motivates the gossiped-counter baseline.
	w, ds := buildWorld(t, 4, 7, network.FairLossy(ms, 30*ms, 0.5), 0)
	if err := w.Fabric.SetOutgoing(2, network.Timely(2*ms)); err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.RunFor(20 * time.Second)
	flapping := false
	for _, d := range ds {
		if at, _ := d.History().StableSince(); at > sim.At(15*time.Second) {
			flapping = true
		}
	}
	if !flapping {
		t.Fatal("expected persistent leader flapping under fair-lossy links")
	}
}

func TestUnknownMessageIgnored(t *testing.T) {
	w, ds := buildWorld(t, 2, 8, network.Timely(ms), 0)
	w.Start()
	w.RunFor(50 * ms)
	ds[1].Deliver(0, strangeMsg{})
	if ds[1].Leader() != 0 {
		t.Fatal("unknown message changed leader")
	}
}

type strangeMsg struct{}

func (strangeMsg) Kind() string { return "STRANGE" }

func TestConfigDefaults(t *testing.T) {
	d := New(Config{})
	if d.cfg.Eta != 10*ms || d.cfg.BaseTimeout != 30*ms || d.cfg.Increment != 10*ms {
		t.Fatalf("defaults = %+v", d.cfg)
	}
}
