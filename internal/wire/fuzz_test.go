package wire

import (
	"reflect"
	"testing"

	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/detector/source"
	"repro/internal/node"
	"repro/internal/tracing"
)

// FuzzEnvelopeRoundTrip drives arbitrary bytes through UnmarshalEnvelope
// and, whenever a frame decodes, re-marshals the message under both
// versions and demands a byte-stable fixpoint and strict decoding of the
// canonical frames. The fuzzer therefore explores three invariants at
// once:
//
//  1. no input panics or over-allocates (the decoder range-checks every
//     length prefix before allocating);
//  2. decode∘encode is the identity on every decodable value, in both
//     versions and across versions;
//  3. canonical frames are strict — truncating one byte yields an error,
//     and so does appending one.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	seed := NewCodec()
	seedFixed := NewCodec()
	seedFixed.SetEncodeVersion(VersionFixed)
	seedMsgs := []struct {
		from node.ID
		msg  node.Message
	}{
		{0, core.LeaderMsg{Epoch: 1}},
		{1, core.AccuseMsg{Epoch: 300}},
		{2, source.AliveMsg{Counters: []uint64{1, 1 << 40, 0}}},
		{3, synod.PromiseMsg{B: 9, AccB: 2, AccV: "seed"}},
		{4, rsm.AcceptMsg{B: 5, Inst: 7, V: "cmd", CommitUpTo: 6, LeaseSeq: 3}},
		{1, rsm.LeaseGrantMsg{B: 5, Seq: 8}},
		{2, rsm.LeaseAckMsg{B: 5, Seq: 8}},
		{3, rsm.ReadReqMsg{Seq: 41, Count: 16, Origin: 3}},
		{4, rsm.ReadReplyMsg{Seq: 41, Count: 16, Index: 99, Local: true}},
		{0, group.Msg{Group: 0, Inner: rsm.RequestMsg{V: "k=v"}}},
		{2, group.Msg{Group: 3, Inner: rsm.AcceptMsg{B: 5, Inst: 7, V: "cmd", CommitUpTo: 6, LeaseSeq: 3}}},
		{1, group.Msg{Group: 1, Inner: core.LeaderMsg{Epoch: 9}}},
		{0, tracing.Wrap{Ctx: tracing.Context{Trace: 1 << 48, Span: 1<<48 | 2}, Inner: rsm.RequestMsg{V: "k=v"}}},
		{3, tracing.Wrap{Ctx: tracing.Context{Trace: 7, Span: 8}, Inner: rsm.AcceptMsg{B: 5, Inst: 7, V: "cmd", CommitUpTo: 6, LeaseSeq: 3}}},
		{2, group.Msg{Group: 2, Inner: tracing.Wrap{Ctx: tracing.Context{Trace: 9, Span: 10}, Inner: rsm.AcceptedMsg{B: 5, Inst: 7, Done: 6, LeaseSeq: 3}}}},
	}
	for _, s := range seedMsgs {
		for _, c := range []*Codec{seed, seedFixed} {
			b, err := c.MarshalEnvelope(s.from, s.msg)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{verVarintByte})
	f.Add([]byte{0, 0, 0, 1, codeCoreLeader})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	fixed := NewCodec()
	fixed.SetEncodeVersion(VersionFixed)
	varint := NewCodec()

	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := varint.UnmarshalEnvelope(b)
		if err != nil {
			if env.Msg != nil {
				t.Fatal("error with non-nil message")
			}
			return
		}
		for name, c := range map[string]*Codec{"fixed": fixed, "varint": varint} {
			canon, err := c.MarshalEnvelope(env.From, env.Msg)
			if err != nil {
				t.Fatalf("%s re-marshal of decoded %T: %v", name, env.Msg, err)
			}
			again, err := c.UnmarshalEnvelope(canon)
			if err != nil {
				t.Fatalf("%s canonical frame rejected: %v", name, err)
			}
			if again.From != env.From || !reflect.DeepEqual(again.Msg, env.Msg) {
				t.Fatalf("%s round trip changed value: %+v → %+v", name, env, again)
			}
			if _, err := c.UnmarshalEnvelope(canon[:len(canon)-1]); err == nil {
				t.Fatalf("%s frame truncated by one byte accepted", name)
			}
			if _, err := c.UnmarshalEnvelope(append(canon[:len(canon):len(canon)], 0)); err == nil {
				t.Fatalf("%s frame with a trailing byte accepted", name)
			}
		}
	})
}
