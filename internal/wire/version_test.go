package wire

import (
	"reflect"
	"testing"

	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/detector/alltoall"
	"repro/internal/detector/source"
	"repro/internal/node"
)

// versionSampleMsgs mirrors the full registry: one representative value per
// registered kind, with realistic small field values (steady-state epochs
// and ballots are small integers — the case varint encoding exists for).
func versionSampleMsgs() []node.Message {
	return []node.Message{
		core.LeaderMsg{Epoch: 3},
		core.AccuseMsg{Epoch: 4},
		core.RebuffMsg{Epoch: 4},
		alltoall.AliveMsg{},
		source.AliveMsg{Counters: []uint64{17, 0, 254}},
		synod.PrepareMsg{B: 12},
		synod.PromiseMsg{B: 12, AccB: 5, AccV: "v"},
		synod.AcceptMsg{B: 12, V: "value"},
		rsm.PromiseMsg{B: 9, Entries: []rsm.PromEntry{{Inst: 1, AccB: 2, AccV: "a"}}},
		rsm.AcceptMsg{B: 9, Inst: 4, V: "x", CommitUpTo: 3, MinDone: 2},
		group.Msg{Group: 2, Inner: rsm.AcceptMsg{B: 9, Inst: 4, V: "x", CommitUpTo: 3, MinDone: 2}},
		group.Msg{Group: 0, Inner: rsm.RequestMsg{V: "cmd"}},
	}
}

// TestCrossVersionDecode proves the compatibility contract: frames encoded
// under either version decode identically on any codec, because decode
// dispatches on the frame's first byte, not on the codec's encode mode.
func TestCrossVersionDecode(t *testing.T) {
	fixed := NewCodec()
	fixed.SetEncodeVersion(VersionFixed)
	varint := NewCodec() // VersionVarint by default

	for _, m := range versionSampleMsgs() {
		for name, producer := range map[string]*Codec{"fixed": fixed, "varint": varint} {
			b, err := producer.Marshal(m)
			if err != nil {
				t.Fatalf("%s Marshal(%T): %v", name, m, err)
			}
			for consumerName, consumer := range map[string]*Codec{"fixed": fixed, "varint": varint} {
				got, err := consumer.Unmarshal(b)
				if err != nil {
					t.Fatalf("%s frame on %s codec (%T): %v", name, consumerName, m, err)
				}
				if !reflect.DeepEqual(got, m) {
					t.Fatalf("%s→%s changed %T: %+v → %+v", name, consumerName, m, m, got)
				}
			}
		}

		env, err := fixed.MarshalEnvelope(2, m)
		if err != nil {
			t.Fatal(err)
		}
		out, err := varint.UnmarshalEnvelope(env)
		if err != nil {
			t.Fatalf("fixed envelope on varint codec (%T): %v", m, err)
		}
		if out.From != 2 || !reflect.DeepEqual(out.Msg, m) {
			t.Fatalf("fixed envelope changed %T: %+v", m, out)
		}
	}
}

// TestVarintEnvelopeStrictlySmaller pins the size win the varint encoding
// exists for: for every registered kind with realistic field values, the
// varint envelope is strictly smaller than the fixed one. (The 4-byte
// sender header shrinking to marker + 1-byte varint already nets 2 bytes
// even for field-free messages.)
func TestVarintEnvelopeStrictlySmaller(t *testing.T) {
	fixed := NewCodec()
	fixed.SetEncodeVersion(VersionFixed)
	varint := NewCodec()

	for _, m := range versionSampleMsgs() {
		fb, err := fixed.MarshalEnvelope(1, m)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := varint.MarshalEnvelope(1, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(vb) >= len(fb) {
			t.Errorf("%T: varint envelope %d bytes, fixed %d — varint must be strictly smaller",
				m, len(vb), len(fb))
		}
	}
}

func TestEncodeVersionSelect(t *testing.T) {
	c := NewCodec()
	if v := c.EncodeVersion(); v != VersionVarint {
		t.Fatalf("default version = %d, want VersionVarint", v)
	}
	c.SetEncodeVersion(VersionFixed)
	if v := c.EncodeVersion(); v != VersionFixed {
		t.Fatalf("version after SetEncodeVersion(VersionFixed) = %d", v)
	}
	b, err := c.Marshal(core.LeaderMsg{Epoch: 42})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed frame starts with the type code and carries an 8-byte epoch.
	if len(b) != 9 || b[0] >= codeLimit {
		t.Fatalf("fixed frame = % x, want 1-byte code + 8-byte epoch", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown version accepted")
		}
	}()
	c.SetEncodeVersion(Version(99))
}

func TestRegisterRefusesMarkerBand(t *testing.T) {
	c := NewEmptyCodec()
	defer func() {
		if recover() == nil {
			t.Fatal("code in the version-marker band accepted")
		}
	}()
	c.Register(codeLimit, "BAD",
		func(*Encoder, node.Message) error { return nil },
		func(*Decoder) (node.Message, error) { return nil, nil })
}

// TestFixedWireFormatFrozen pins exact fixed-encoding bytes: old frames on
// disk or in flight must decode forever, so the fixed layout can never
// drift.
func TestFixedWireFormatFrozen(t *testing.T) {
	c := NewCodec()
	c.SetEncodeVersion(VersionFixed)
	b, err := c.MarshalEnvelope(7, core.LeaderMsg{Epoch: 0x0102})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 7, // sender id, big-endian u32
		codeCoreLeader,
		0, 0, 0, 0, 0, 0, 1, 2, // epoch, big-endian u64
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("fixed envelope = % x, want % x", b, want)
	}
}

// TestSteadyStateEncodeAllocs pins the allocation-free encode path: with a
// reused destination buffer, marshaling a heartbeat envelope performs no
// allocations in either version.
func TestSteadyStateEncodeAllocs(t *testing.T) {
	for _, v := range []Version{VersionFixed, VersionVarint} {
		c := NewCodec()
		c.SetEncodeVersion(v)
		buf := make([]byte, 0, 64)
		msg := core.LeaderMsg{Epoch: 5}
		allocs := testing.AllocsPerRun(1000, func() {
			b, err := c.MarshalEnvelopeAppend(buf[:0], 1, msg)
			if err != nil || len(b) == 0 {
				t.Fatal("marshal failed")
			}
		})
		if allocs != 0 {
			t.Errorf("version %d: %v allocs/op encoding a heartbeat envelope, want 0", v, allocs)
		}
	}
}

// TestSteadyStateDecodeAllocs pins the receive-loop half: decoding a
// heartbeat envelope is allocation-free. The pooled Decoder supplies the
// scratch state, and boxing the small pointer-free LeaderMsg into the
// node.Message interface hits the runtime's static box cache.
func TestSteadyStateDecodeAllocs(t *testing.T) {
	c := NewCodec()
	frame, err := c.MarshalEnvelope(1, core.LeaderMsg{Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env, err := c.UnmarshalEnvelope(frame)
		if err != nil || env.From != 1 {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op decoding a heartbeat envelope, want 0", allocs)
	}
}
