package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/consensus"
	"repro/internal/consensus/ct"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/detector/alltoall"
	"repro/internal/detector/source"
	"repro/internal/node"
)

// roundTrip marshals and unmarshals m, failing on any error.
func roundTrip(t *testing.T, c *Codec, m node.Message) node.Message {
	t.Helper()
	b, err := c.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", m, err)
	}
	out, err := c.Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", m, err)
	}
	return out
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	c := NewCodec()
	msgs := []node.Message{
		core.LeaderMsg{Epoch: 42},
		core.AccuseMsg{Epoch: 7},
		core.RebuffMsg{Epoch: 9},
		alltoall.AliveMsg{},
		source.AliveMsg{Counters: []uint64{1, 0, 99}},
		synod.PrepareMsg{B: 17},
		synod.PromiseMsg{B: 17, AccB: 5, AccV: "v"},
		synod.NackMsg{B: 17, Promised: 20},
		synod.AcceptMsg{B: 17, V: "value with spaces"},
		synod.AcceptedMsg{B: 17},
		synod.DecideMsg{V: "final"},
		synod.LearnMsg{},
		synod.RequestMsg{V: "req"},
		ct.EstimateMsg{R: 3, Est: "e", TS: 2},
		ct.ProposalMsg{R: 3, V: "p"},
		ct.AckMsg{R: 3},
		ct.NackMsg{R: 4},
		ct.DecideMsg{V: "d"},
		rsm.RequestMsg{V: "cmd"},
		rsm.PrepareMsg{B: 9},
		rsm.PromiseMsg{B: 9, Entries: []rsm.PromEntry{{Inst: 1, AccB: 2, AccV: "a"}, {Inst: 5, AccB: 9, AccV: "b"}}},
		rsm.PromiseMsg{B: 9},
		rsm.NackMsg{B: 9, Promised: 12},
		rsm.AcceptMsg{B: 9, Inst: 4, V: "x", CommitUpTo: 3, MinDone: 2, LeaseSeq: 6},
		rsm.AcceptedMsg{B: 9, Inst: 4, Done: 11, LeaseSeq: 6},
		rsm.DecideMsg{Inst: 4, V: "x"},
		rsm.LearnMsg{FirstGap: 11},
		rsm.LeaseGrantMsg{B: 9, Seq: 7},
		rsm.LeaseAckMsg{B: 9, Seq: 7},
		rsm.ReadReqMsg{Seq: 100, Count: 64, Origin: 2},
		rsm.ReadReplyMsg{Seq: 100, Count: 64, Index: 4242, Local: true},
		group.Msg{Group: 3, Inner: rsm.AcceptMsg{B: 9, Inst: 4, V: "x", CommitUpTo: 3, MinDone: 2, LeaseSeq: 6}},
	}
	for _, m := range msgs {
		got := roundTrip(t, c, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip changed %T: %+v → %+v", m, m, got)
		}
	}
}

func TestRoundTripCoversEveryRegisteredKind(t *testing.T) {
	c := NewCodec()
	if got := len(c.Kinds()); got != 32 {
		t.Fatalf("registered kinds = %d, update the round-trip test when adding messages", got)
	}
}

func TestQuickRoundTripScalars(t *testing.T) {
	c := NewCodec()
	property := func(epoch uint64, b uint64, inst uint32, v string) bool {
		m1 := core.LeaderMsg{Epoch: epoch}
		r1, err := c.Marshal(m1)
		if err != nil {
			return false
		}
		got1, err := c.Unmarshal(r1)
		if err != nil || got1 != m1 {
			return false
		}
		m2 := rsm.AcceptMsg{B: consensus.Ballot(b), Inst: int(inst), V: consensus.Value(v)}
		r2, err := c.Marshal(m2)
		if err != nil {
			return false
		}
		got2, err := c.Unmarshal(r2)
		return err == nil && got2 == m2
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripVectors(t *testing.T) {
	c := NewCodec()
	property := func(counters []uint64) bool {
		m := source.AliveMsg{Counters: counters}
		b, err := c.Marshal(m)
		if err != nil {
			return false
		}
		got, err := c.Unmarshal(b)
		if err != nil {
			return false
		}
		out, ok := got.(source.AliveMsg)
		if !ok || len(out.Counters) != len(counters) {
			return false
		}
		for i := range counters {
			if out.Counters[i] != counters[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := NewCodec()
	if _, err := c.Unmarshal(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := c.Unmarshal([]byte{0xFF}); err == nil {
		t.Fatal("unknown code accepted")
	}
	good, err := c.Marshal(synod.AcceptMsg{B: 1, V: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unmarshal(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := c.Unmarshal(append(good, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestFuzzUnmarshalNeverPanics(t *testing.T) {
	c := NewCodec()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _ = c.Unmarshal(b) // must not panic or over-allocate
	}
}

func TestMarshalUnknownKind(t *testing.T) {
	c := NewCodec()
	if _, err := c.Marshal(weirdMsg{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

type weirdMsg struct{}

func (weirdMsg) Kind() string { return "WEIRD" }

func TestDuplicateRegistrationPanics(t *testing.T) {
	c := NewEmptyCodec()
	enc := func(*Encoder, node.Message) error { return nil }
	dec := func(*Decoder) (node.Message, error) { return weirdMsg{}, nil }
	c.Register(1, "A", enc, dec)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate code accepted")
		}
	}()
	c.Register(1, "B", enc, dec)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	c := NewCodec()
	b, err := c.MarshalEnvelope(3, core.LeaderMsg{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	env, err := c.UnmarshalEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if env.From != 3 {
		t.Fatalf("From = %v", env.From)
	}
	if m, ok := env.Msg.(core.LeaderMsg); !ok || m.Epoch != 8 {
		t.Fatalf("Msg = %+v", env.Msg)
	}
	if _, err := c.UnmarshalEnvelope([]byte{1, 2}); err == nil {
		t.Fatal("short envelope accepted")
	}
}

func TestNegativeIntRejected(t *testing.T) {
	var e Encoder
	if err := e.Int(-1); err == nil {
		t.Fatal("negative int encoded")
	}
}
