// Package wire provides a compact binary codec for every protocol message
// in this repository, used by the live transports (internal/transport) to
// move messages between real processes (goroutines or UDP sockets) instead
// of sharing Go values.
//
// Encoding: one type-code byte followed by the message fields in
// big-endian fixed-width integers; strings and vectors carry a u32 length
// prefix. The codec is strict — unknown type codes, truncated payloads and
// trailing garbage are errors — because a transport must never deliver a
// half-parsed message to a protocol automaton.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/node"
)

// Codec errors.
var (
	// ErrUnknownKind is returned when marshaling a message kind that was
	// never registered.
	ErrUnknownKind = errors.New("wire: unknown message kind")
	// ErrUnknownCode is returned when unmarshaling an unregistered type
	// code.
	ErrUnknownCode = errors.New("wire: unknown type code")
	// ErrTruncated is returned when a payload ends prematurely.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTrailing is returned when a payload has bytes past its message.
	ErrTrailing = errors.New("wire: trailing bytes")
	// ErrTooLarge is returned when a length prefix exceeds sane bounds.
	ErrTooLarge = errors.New("wire: length prefix too large")
)

// maxElems bounds length prefixes to keep a corrupt packet from causing a
// huge allocation.
const maxElems = 1 << 20

// EncodeFunc serializes a message's fields (the type code is written by
// the codec).
type EncodeFunc func(e *Encoder, m node.Message) error

// DecodeFunc parses a message's fields.
type DecodeFunc func(d *Decoder) (node.Message, error)

type entry struct {
	code byte
	kind string
	enc  EncodeFunc
	dec  DecodeFunc
}

// Codec maps message kinds to binary representations.
type Codec struct {
	byKind map[string]*entry
	byCode map[byte]*entry
}

// NewEmptyCodec returns a codec with no registrations (tests and custom
// protocols). Most callers want NewCodec from registry.go.
func NewEmptyCodec() *Codec {
	return &Codec{byKind: make(map[string]*entry), byCode: make(map[byte]*entry)}
}

// Register adds a message type. It panics on duplicate codes or kinds:
// registration happens at assembly time and a clash is a programming
// error.
func (c *Codec) Register(code byte, kind string, enc EncodeFunc, dec DecodeFunc) {
	if _, ok := c.byCode[code]; ok {
		panic(fmt.Sprintf("wire: duplicate code %d", code))
	}
	if _, ok := c.byKind[kind]; ok {
		panic(fmt.Sprintf("wire: duplicate kind %q", kind))
	}
	e := &entry{code: code, kind: kind, enc: enc, dec: dec}
	c.byCode[code] = e
	c.byKind[kind] = e
}

// Kinds returns the registered kinds (order unspecified).
func (c *Codec) Kinds() []string {
	out := make([]string, 0, len(c.byKind))
	for k := range c.byKind {
		out = append(out, k)
	}
	return out
}

// encoders pools Encoder headers so the append-style marshal path does
// not allocate one per message (the *Encoder escapes into the registered
// EncodeFunc).
var encoders = sync.Pool{New: func() any { return new(Encoder) }}

// Marshal serializes m with its type code.
func (c *Codec) Marshal(m node.Message) ([]byte, error) {
	return c.MarshalAppend(nil, m)
}

// MarshalAppend serializes m with its type code, appending to dst and
// returning the extended buffer. With a reused dst of sufficient capacity
// the steady-state encode path performs no allocations.
func (c *Codec) MarshalAppend(dst []byte, m node.Message) ([]byte, error) {
	e, ok := c.byKind[m.Kind()]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, m.Kind())
	}
	enc := encoders.Get().(*Encoder)
	enc.buf = append(dst, e.code)
	err := e.enc(enc, m)
	out := enc.buf
	enc.buf = nil
	encoders.Put(enc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Unmarshal parses a message produced by Marshal.
func (c *Codec) Unmarshal(b []byte) (node.Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	e, ok := c.byCode[b[0]]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCode, b[0])
	}
	dec := Decoder{buf: b[1:]}
	m, err := e.dec(&dec)
	if err != nil {
		return nil, fmt.Errorf("decode %q: %w", e.kind, err)
	}
	if len(dec.buf) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after %q", ErrTrailing, len(dec.buf), e.kind)
	}
	return m, nil
}

// Encoder appends big-endian fields to a buffer.
type Encoder struct {
	buf []byte
}

// U64 appends an unsigned 64-bit integer.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U32 appends an unsigned 32-bit integer.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int appends a non-negative int as u64.
func (e *Encoder) Int(v int) error {
	if v < 0 {
		return fmt.Errorf("wire: negative int %d", v)
	}
	e.U64(uint64(v))
	return nil
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed vector of u64.
func (e *Encoder) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Decoder consumes big-endian fields from a buffer.
type Decoder struct {
	buf []byte
}

// U64 reads an unsigned 64-bit integer.
func (d *Decoder) U64() (uint64, error) {
	if len(d.buf) < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[:8])
	d.buf = d.buf[8:]
	return v, nil
}

// U32 reads an unsigned 32-bit integer.
func (d *Decoder) U32() (uint32, error) {
	if len(d.buf) < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[:4])
	d.buf = d.buf[4:]
	return v, nil
}

// Int reads a non-negative int encoded as u64.
func (d *Decoder) Int() (int, error) {
	v, err := d.U64()
	if err != nil {
		return 0, err
	}
	if v > 1<<62 {
		return 0, ErrTooLarge
	}
	return int(v), nil
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.U32()
	if err != nil {
		return "", err
	}
	if n > maxElems {
		return "", ErrTooLarge
	}
	if len(d.buf) < int(n) {
		return "", ErrTruncated
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// U64s reads a length-prefixed vector of u64.
func (d *Decoder) U64s() ([]uint64, error) {
	n, err := d.U32()
	if err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, ErrTooLarge
	}
	out := make([]uint64, n)
	for i := range out {
		out[i], err = d.U64()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Envelope frames a message with its sender for datagram transports.
type Envelope struct {
	From node.ID
	Msg  node.Message
}

// MarshalEnvelope serializes from + message.
func (c *Codec) MarshalEnvelope(from node.ID, m node.Message) ([]byte, error) {
	return c.MarshalEnvelopeAppend(nil, from, m)
}

// MarshalEnvelopeAppend serializes from + message, appending to dst. The
// body is encoded directly after the header — no intermediate copy.
func (c *Codec) MarshalEnvelopeAppend(dst []byte, from node.ID, m node.Message) ([]byte, error) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(from))
	return c.MarshalAppend(append(dst, hdr[:]...), m)
}

// UnmarshalEnvelope parses a framed message.
func (c *Codec) UnmarshalEnvelope(b []byte) (Envelope, error) {
	if len(b) < 4 {
		return Envelope{}, ErrTruncated
	}
	from := node.ID(int32(binary.BigEndian.Uint32(b[:4])))
	m, err := c.Unmarshal(b[4:])
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{From: from, Msg: m}, nil
}
