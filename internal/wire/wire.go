// Package wire provides a compact binary codec for every protocol message
// in this repository, used by the live transports (internal/transport) to
// move messages between real processes (goroutines or UDP sockets) instead
// of sharing Go values.
//
// Two encodings share one registry. The original fixed encoding is one
// type-code byte followed by the message fields in big-endian fixed-width
// integers; strings and vectors carry a u32 length prefix. The varint
// encoding — the default since the batched wire path landed — opens with a
// version marker byte (outside the type-code space) and writes every
// integer field as an unsigned LEB128 varint (zigzag for signed fields),
// shrinking a steady-state heartbeat to a handful of bytes. The decode
// side dispatches on the first byte, so old fixed-width frames keep
// decoding forever.
//
// Both codecs are strict — unknown type codes, truncated payloads and
// trailing garbage are errors — because a transport must never deliver a
// half-parsed message to a protocol automaton.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/node"
)

// Codec errors.
var (
	// ErrUnknownKind is returned when marshaling a message kind that was
	// never registered.
	ErrUnknownKind = errors.New("wire: unknown message kind")
	// ErrUnknownCode is returned when unmarshaling an unregistered type
	// code.
	ErrUnknownCode = errors.New("wire: unknown type code")
	// ErrTruncated is returned when a payload ends prematurely.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTrailing is returned when a payload has bytes past its message.
	ErrTrailing = errors.New("wire: trailing bytes")
	// ErrTooLarge is returned when a length prefix or varint exceeds sane
	// bounds.
	ErrTooLarge = errors.New("wire: length prefix too large")
)

// maxElems bounds length prefixes to keep a corrupt packet from causing a
// huge allocation.
const maxElems = 1 << 20

// Version selects how a codec encodes frames it produces. Decoding always
// accepts every version.
type Version byte

const (
	// VersionFixed is the original encoding: big-endian fixed-width
	// fields, no marker byte (frames start directly with the type code).
	VersionFixed Version = 1
	// VersionVarint frames open with a marker byte and encode integer
	// fields as varints. Strictly smaller than VersionFixed for every
	// message in the registry.
	VersionVarint Version = 2
)

// verVarintByte opens every varint-encoded frame. It sits in a reserved
// band above the type-code space (Register refuses codes >= codeLimit), so
// the first byte of a frame always disambiguates the version.
const (
	verVarintByte byte = 0xF8
	codeLimit     byte = 0xF0
)

// EncodeFunc serializes a message's fields (the type code is written by
// the codec).
type EncodeFunc func(e *Encoder, m node.Message) error

// DecodeFunc parses a message's fields.
type DecodeFunc func(d *Decoder) (node.Message, error)

type entry struct {
	code byte
	kind string
	enc  EncodeFunc
	dec  DecodeFunc
}

// Codec maps message kinds to binary representations.
type Codec struct {
	byKind map[string]*entry
	byCode map[byte]*entry
	encVar bool // encode frames as VersionVarint
}

// NewEmptyCodec returns a codec with no registrations (tests and custom
// protocols), encoding VersionVarint. Most callers want NewCodec from
// registry.go.
func NewEmptyCodec() *Codec {
	return &Codec{byKind: make(map[string]*entry), byCode: make(map[byte]*entry), encVar: true}
}

// SetEncodeVersion selects the encoding for frames this codec produces.
// Decoding is unaffected: every codec accepts every version.
func (c *Codec) SetEncodeVersion(v Version) {
	switch v {
	case VersionFixed:
		c.encVar = false
	case VersionVarint:
		c.encVar = true
	default:
		panic(fmt.Sprintf("wire: unknown version %d", v))
	}
}

// EncodeVersion returns the version this codec encodes with.
func (c *Codec) EncodeVersion() Version {
	if c.encVar {
		return VersionVarint
	}
	return VersionFixed
}

// Register adds a message type. It panics on duplicate codes or kinds:
// registration happens at assembly time and a clash is a programming
// error. Codes at or above the framing-marker band are refused.
func (c *Codec) Register(code byte, kind string, enc EncodeFunc, dec DecodeFunc) {
	if code >= codeLimit {
		panic(fmt.Sprintf("wire: code %d collides with the version-marker band", code))
	}
	if _, ok := c.byCode[code]; ok {
		panic(fmt.Sprintf("wire: duplicate code %d", code))
	}
	if _, ok := c.byKind[kind]; ok {
		panic(fmt.Sprintf("wire: duplicate kind %q", kind))
	}
	e := &entry{code: code, kind: kind, enc: enc, dec: dec}
	c.byCode[code] = e
	c.byKind[kind] = e
}

// Kinds returns the registered kinds (order unspecified).
func (c *Codec) Kinds() []string {
	out := make([]string, 0, len(c.byKind))
	for k := range c.byKind {
		out = append(out, k)
	}
	return out
}

// encoders and decoders pool the codec state so the append-style marshal
// path and the receive loops do not allocate one per message (both escape
// into the registered EncodeFunc/DecodeFunc).
var (
	encoders = sync.Pool{New: func() any { return new(Encoder) }}
	decoders = sync.Pool{New: func() any { return new(Decoder) }}
)

// Marshal serializes m with its type code.
func (c *Codec) Marshal(m node.Message) ([]byte, error) {
	return c.MarshalAppend(nil, m)
}

// MarshalAppend serializes m with its type code, appending to dst and
// returning the extended buffer. With a reused dst of sufficient capacity
// the steady-state encode path performs no allocations.
func (c *Codec) MarshalAppend(dst []byte, m node.Message) ([]byte, error) {
	if c.encVar {
		dst = append(dst, verVarintByte)
	}
	return c.marshalBody(dst, m)
}

// marshalBody appends the type code and fields of m (no version marker) in
// the codec's encode mode.
func (c *Codec) marshalBody(dst []byte, m node.Message) ([]byte, error) {
	e, ok := c.byKind[m.Kind()]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, m.Kind())
	}
	enc := encoders.Get().(*Encoder)
	enc.varint = c.encVar
	enc.buf = append(dst, e.code)
	err := e.enc(enc, m)
	out := enc.buf
	enc.buf = nil
	encoders.Put(enc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Unmarshal parses a message produced by Marshal, in either version.
func (c *Codec) Unmarshal(b []byte) (node.Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	varint := false
	if b[0] == verVarintByte {
		varint = true
		b = b[1:]
	}
	return c.unmarshalBody(b, varint)
}

// unmarshalBody parses a type code plus fields (no version marker) in the
// given mode, enforcing the no-trailing-bytes invariant.
func (c *Codec) unmarshalBody(b []byte, varint bool) (node.Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	e, ok := c.byCode[b[0]]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCode, b[0])
	}
	dec := decoders.Get().(*Decoder)
	dec.buf = b[1:]
	dec.varint = varint
	m, err := e.dec(dec)
	trailing := len(dec.buf)
	dec.buf = nil // never retain the caller's buffer in the pool
	decoders.Put(dec)
	if err != nil {
		return nil, fmt.Errorf("decode %q: %w", e.kind, err)
	}
	if trailing != 0 {
		return nil, fmt.Errorf("%w: %d bytes after %q", ErrTrailing, trailing, e.kind)
	}
	return m, nil
}

// Encoder appends fields to a buffer, fixed-width or varint depending on
// the frame version being produced. Registered EncodeFuncs use one set of
// field helpers and serve both versions.
type Encoder struct {
	buf    []byte
	varint bool
}

// U64 appends an unsigned 64-bit integer.
func (e *Encoder) U64(v uint64) {
	if e.varint {
		e.buf = binary.AppendUvarint(e.buf, v)
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U32 appends an unsigned 32-bit integer.
func (e *Encoder) U32(v uint32) {
	if e.varint {
		e.buf = binary.AppendUvarint(e.buf, uint64(v))
		return
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends a signed 64-bit integer: zigzag varint in varint frames,
// big-endian two's complement in fixed frames.
func (e *Encoder) I64(v int64) {
	if e.varint {
		e.buf = binary.AppendVarint(e.buf, v)
		return
	}
	e.U64(uint64(v))
}

// Int appends a non-negative int as u64.
func (e *Encoder) Int(v int) error {
	if v < 0 {
		return fmt.Errorf("wire: negative int %d", v)
	}
	e.U64(uint64(v))
	return nil
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed vector of u64.
func (e *Encoder) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Decoder consumes fields from a buffer, fixed-width or varint depending
// on the frame version being parsed.
type Decoder struct {
	buf    []byte
	varint bool
}

// uvarint reads one unsigned varint.
func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n > 0 {
		d.buf = d.buf[n:]
		return v, nil
	}
	if n == 0 {
		return 0, ErrTruncated
	}
	return 0, ErrTooLarge // more than 64 bits of payload
}

// U64 reads an unsigned 64-bit integer.
func (d *Decoder) U64() (uint64, error) {
	if d.varint {
		return d.uvarint()
	}
	if len(d.buf) < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[:8])
	d.buf = d.buf[8:]
	return v, nil
}

// U32 reads an unsigned 32-bit integer.
func (d *Decoder) U32() (uint32, error) {
	if d.varint {
		v, err := d.uvarint()
		if err != nil {
			return 0, err
		}
		if v > 1<<32-1 {
			return 0, ErrTooLarge
		}
		return uint32(v), nil
	}
	if len(d.buf) < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[:4])
	d.buf = d.buf[4:]
	return v, nil
}

// I64 reads a signed 64-bit integer (see Encoder.I64).
func (d *Decoder) I64() (int64, error) {
	if d.varint {
		v, n := binary.Varint(d.buf)
		if n > 0 {
			d.buf = d.buf[n:]
			return v, nil
		}
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, ErrTooLarge
	}
	v, err := d.U64()
	return int64(v), err
}

// Int reads a non-negative int encoded as u64.
func (d *Decoder) Int() (int, error) {
	v, err := d.U64()
	if err != nil {
		return 0, err
	}
	if v > 1<<62 {
		return 0, ErrTooLarge
	}
	return int(v), nil
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.U32()
	if err != nil {
		return "", err
	}
	if n > maxElems {
		return "", ErrTooLarge
	}
	if len(d.buf) < int(n) {
		return "", ErrTruncated
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// U64s reads a length-prefixed vector of u64.
func (d *Decoder) U64s() ([]uint64, error) {
	n, err := d.U32()
	if err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, ErrTooLarge
	}
	out := make([]uint64, n)
	for i := range out {
		out[i], err = d.U64()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Envelope frames a message with its sender for datagram transports.
type Envelope struct {
	From node.ID
	Msg  node.Message
}

// MarshalEnvelope serializes from + message.
func (c *Codec) MarshalEnvelope(from node.ID, m node.Message) ([]byte, error) {
	return c.MarshalEnvelopeAppend(nil, from, m)
}

// MarshalEnvelopeAppend serializes from + message, appending to dst. The
// body is encoded directly after the header — no intermediate copy. In
// varint frames the sender id is itself a varint, so a steady-state
// heartbeat envelope is a handful of bytes.
func (c *Codec) MarshalEnvelopeAppend(dst []byte, from node.ID, m node.Message) ([]byte, error) {
	if c.encVar {
		dst = append(dst, verVarintByte)
		dst = binary.AppendUvarint(dst, uint64(uint32(from)))
		return c.marshalBody(dst, m)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(from))
	return c.marshalBody(append(dst, hdr[:]...), m)
}

// UnmarshalEnvelope parses a framed message, in either version.
func (c *Codec) UnmarshalEnvelope(b []byte) (Envelope, error) {
	if len(b) == 0 {
		return Envelope{}, ErrTruncated
	}
	if b[0] == verVarintByte {
		v, n := binary.Uvarint(b[1:])
		switch {
		case n == 0:
			return Envelope{}, ErrTruncated
		case n < 0 || v > 1<<32-1:
			return Envelope{}, ErrTooLarge
		}
		from := node.ID(int32(uint32(v)))
		m, err := c.unmarshalBody(b[1+n:], true)
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{From: from, Msg: m}, nil
	}
	if len(b) < 4 {
		return Envelope{}, ErrTruncated
	}
	from := node.ID(int32(binary.BigEndian.Uint32(b[:4])))
	m, err := c.unmarshalBody(b[4:], false)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{From: from, Msg: m}, nil
}
