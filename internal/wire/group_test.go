package wire

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
)

// TestGroupFixedWireFrozen pins the exact fixed-encoding bytes of a group
// wrapper: the GROUP code, the group id as a fixed u64, then the inner
// message's own code and fields nested in place. Frames in flight across a
// rolling restart must decode forever, so this layout can never drift.
func TestGroupFixedWireFrozen(t *testing.T) {
	c := NewCodec()
	c.SetEncodeVersion(VersionFixed)
	b, err := c.MarshalEnvelope(7, group.Msg{Group: 1, Inner: rsm.RequestMsg{V: "ab"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 7, // sender id, big-endian u32
		codeGroupWrap,
		0, 0, 0, 0, 0, 0, 0, 1, // group id, big-endian u64
		codeRSMRequest,
		0, 0, 0, 2, 'a', 'b', // value, length-prefixed
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("fixed group envelope = % x, want % x", b, want)
	}
}

// TestGroupVarintWireFrozen pins the varint layout the same way: marker,
// varint sender, GROUP code, varint group id, inner code, inner fields.
func TestGroupVarintWireFrozen(t *testing.T) {
	c := NewCodec()
	b, err := c.MarshalEnvelope(7, group.Msg{Group: 3, Inner: core.LeaderMsg{Epoch: 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		verVarintByte,
		7, // sender id, uvarint
		codeGroupWrap,
		3, // group id, uvarint
		codeCoreLeader,
		5, // epoch, uvarint
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("varint group envelope = % x, want % x", b, want)
	}
}

// TestGroupRoundTrip exercises the wrapper around a spread of inner kinds
// and group ids, in both versions.
func TestGroupRoundTrip(t *testing.T) {
	fixed := NewCodec()
	fixed.SetEncodeVersion(VersionFixed)
	varint := NewCodec()
	msgs := []group.Msg{
		{Group: 0, Inner: rsm.RequestMsg{V: "k=v"}},
		{Group: 1, Inner: rsm.PrepareMsg{B: 12}},
		{Group: 7, Inner: rsm.AcceptMsg{B: 2, Inst: 40, V: "x", CommitUpTo: 39, MinDone: 12, LeaseSeq: 4}},
		{Group: 300, Inner: rsm.DecideMsg{Inst: 9, V: consensus.Value(strings.Repeat("v", 100))}},
		{Group: 2, Inner: core.LeaderMsg{Epoch: 8}},
		{Group: 3, Inner: rsm.PromiseMsg{B: 9, Entries: []rsm.PromEntry{{Inst: 1, AccB: 2, AccV: "a"}}}},
	}
	for _, m := range msgs {
		for name, c := range map[string]*Codec{"fixed": fixed, "varint": varint} {
			b, err := c.Marshal(m)
			if err != nil {
				t.Fatalf("%s Marshal(%+v): %v", name, m, err)
			}
			got, err := c.Unmarshal(b)
			if err != nil {
				t.Fatalf("%s Unmarshal(%+v): %v", name, m, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s round trip changed value: %+v → %+v", name, m, got)
			}
		}
	}
}

// TestGroupNestRejected proves the one-level bound in both directions: a
// wrapper inside a wrapper fails to encode, and a hand-crafted nested frame
// fails to decode — so decoder recursion depth is bounded by construction,
// not by a counter.
func TestGroupNestRejected(t *testing.T) {
	c := NewCodec()
	nested := group.Msg{Group: 1, Inner: group.Msg{Group: 2, Inner: rsm.RequestMsg{V: "x"}}}
	if _, err := c.Marshal(nested); err == nil {
		t.Fatal("nested group wrapper encoded")
	}
	// Fixed-version frame: GROUP, group id 1, then GROUP again.
	frame := []byte{codeGroupWrap, 0, 0, 0, 0, 0, 0, 0, 1, codeGroupWrap}
	if _, err := c.Unmarshal(frame); err == nil {
		t.Fatal("nested group frame decoded")
	}
}

// TestGroupEncodeRejects covers the remaining encoder guards: nil inner
// message and an inner kind the codec has never heard of.
func TestGroupEncodeRejects(t *testing.T) {
	c := NewCodec()
	if _, err := c.Marshal(group.Msg{Group: 1}); err == nil {
		t.Fatal("nil inner message encoded")
	}
	if _, err := c.Marshal(group.Msg{Group: 1, Inner: unknownMsg{}}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown inner kind: err = %v, want ErrUnknownKind", err)
	}
	if _, err := c.Marshal(group.Msg{Group: -1, Inner: rsm.RequestMsg{V: "x"}}); err == nil {
		t.Fatal("negative group id encoded")
	}
}

type unknownMsg struct{}

func (unknownMsg) Kind() string { return "UNKNOWN-TEST-KIND" }

// TestGroupDecodeRejects covers the decoder guards: a frame that ends right
// after the group id, and an inner code the codec does not know.
func TestGroupDecodeRejects(t *testing.T) {
	c := NewCodec()
	truncated := []byte{codeGroupWrap, 0, 0, 0, 0, 0, 0, 0, 1}
	if _, err := c.Unmarshal(truncated); !errors.Is(err, ErrTruncated) {
		t.Fatalf("frame ending after group id: err = %v, want ErrTruncated", err)
	}
	unknown := []byte{codeGroupWrap, 0, 0, 0, 0, 0, 0, 0, 1, 0xEF}
	if _, err := c.Unmarshal(unknown); !errors.Is(err, ErrUnknownCode) {
		t.Fatalf("unknown inner code: err = %v, want ErrUnknownCode", err)
	}
}

// TestGroupStrictTrailing confirms the top-level strict-decode contract
// still holds through the wrapper: a canonical group frame with one byte
// appended is rejected, which is what makes the kind a clean wire break for
// pre-group peers (they fail decoding, not misinterpret).
func TestGroupStrictTrailing(t *testing.T) {
	c := NewCodec()
	b, err := c.Marshal(group.Msg{Group: 2, Inner: rsm.DecideMsg{Inst: 4, V: consensus.Value("v")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unmarshal(append(b, 0)); err == nil {
		t.Fatal("group frame with trailing byte accepted")
	}
	if _, err := c.Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("group frame truncated by one byte accepted")
	}
}
