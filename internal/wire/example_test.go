package wire_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wire"
)

// Example round-trips a protocol message through the binary codec, the way
// the live transports move every message between processes.
func Example() {
	codec := wire.NewCodec()
	data, err := codec.Marshal(core.LeaderMsg{Epoch: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A varint frame: version marker + type code + varint epoch.
	fmt.Println("encoded bytes:", len(data))

	msg, err := codec.Unmarshal(data)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	hb := msg.(core.LeaderMsg)
	fmt.Println("kind:", hb.Kind(), "epoch:", hb.Epoch)
	// Output:
	// encoded bytes: 3
	// kind: LEADER epoch: 7
}
