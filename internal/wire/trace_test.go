package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/tracing"
)

// TestTraceFixedWireFrozen pins the exact fixed-encoding bytes of a trace
// wrapper: the TRACE code, trace id and parent span id as fixed u64s, then
// the inner message's own code and fields nested in place. Like the GROUP
// layout, frames in flight across a rolling restart must decode forever,
// so this can never drift.
func TestTraceFixedWireFrozen(t *testing.T) {
	c := NewCodec()
	c.SetEncodeVersion(VersionFixed)
	b, err := c.MarshalEnvelope(7, tracing.Wrap{
		Ctx:   tracing.Context{Trace: 2, Span: 3},
		Inner: rsm.RequestMsg{V: "ab"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 7, // sender id, big-endian u32
		codeTraceWrap,
		0, 0, 0, 0, 0, 0, 0, 2, // trace id, big-endian u64
		0, 0, 0, 0, 0, 0, 0, 3, // parent span id, big-endian u64
		codeRSMRequest,
		0, 0, 0, 2, 'a', 'b', // value, length-prefixed
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("fixed trace envelope = % x, want % x", b, want)
	}
}

// TestTraceVarintWireFrozen pins the varint layout the same way: marker,
// varint sender, TRACE code, varint trace id and span id, inner code,
// inner fields.
func TestTraceVarintWireFrozen(t *testing.T) {
	c := NewCodec()
	b, err := c.MarshalEnvelope(7, tracing.Wrap{
		Ctx:   tracing.Context{Trace: 2, Span: 3},
		Inner: core.LeaderMsg{Epoch: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		verVarintByte,
		7, // sender id, uvarint
		codeTraceWrap,
		2, // trace id, uvarint
		3, // parent span id, uvarint
		codeCoreLeader,
		5, // epoch, uvarint
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("varint trace envelope = % x, want % x", b, want)
	}
}

// TestTraceRoundTrip exercises the wrapper around a spread of inner kinds
// and context values — including full-width 64-bit ids — in both
// versions, plus the sharded composition GROUP(TRACE(inner)).
func TestTraceRoundTrip(t *testing.T) {
	fixed := NewCodec()
	fixed.SetEncodeVersion(VersionFixed)
	varint := NewCodec()
	msgs := []node.Message{
		tracing.Wrap{Ctx: tracing.Context{Trace: 1, Span: 2}, Inner: rsm.RequestMsg{V: "k=v"}},
		tracing.Wrap{Ctx: tracing.Context{Trace: 1 << 48, Span: 1<<48 | 9}, Inner: rsm.AcceptMsg{B: 2, Inst: 40, V: "x", CommitUpTo: 39, MinDone: 12, LeaseSeq: 4}},
		tracing.Wrap{Ctx: tracing.Context{Trace: ^tracing.TraceID(0), Span: ^tracing.SpanID(0)}, Inner: rsm.AcceptedMsg{B: 2, Inst: 40, Done: 39, LeaseSeq: 4}},
		tracing.Wrap{Ctx: tracing.Context{Trace: 5, Span: 0}, Inner: rsm.DecideMsg{Inst: 9, V: consensus.Value("v")}},
		group.Msg{Group: 3, Inner: tracing.Wrap{Ctx: tracing.Context{Trace: 6, Span: 7}, Inner: rsm.RequestMsg{V: "sharded"}}},
	}
	for _, m := range msgs {
		for name, c := range map[string]*Codec{"fixed": fixed, "varint": varint} {
			b, err := c.Marshal(m)
			if err != nil {
				t.Fatalf("%s Marshal(%+v): %v", name, m, err)
			}
			got, err := c.Unmarshal(b)
			if err != nil {
				t.Fatalf("%s Unmarshal(%+v): %v", name, m, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s round trip changed value: %+v → %+v", name, m, got)
			}
		}
	}
}

// TestTraceNestRejected proves the nesting rules in both directions: a
// trace wrapper inside a trace wrapper fails to encode and decode, and a
// group wrapper inside a trace wrapper fails both ways too — the group
// envelope must be outermost, so GROUP(TRACE(x)) is legal (covered by
// TestTraceRoundTrip) and TRACE(GROUP(x)) is not.
func TestTraceNestRejected(t *testing.T) {
	c := NewCodec()
	inner := rsm.RequestMsg{V: "x"}
	ctx := tracing.Context{Trace: 1, Span: 2}
	if _, err := c.Marshal(tracing.Wrap{Ctx: ctx, Inner: tracing.Wrap{Ctx: ctx, Inner: inner}}); err == nil {
		t.Fatal("nested trace wrapper encoded")
	}
	if _, err := c.Marshal(tracing.Wrap{Ctx: ctx, Inner: group.Msg{Group: 1, Inner: inner}}); err == nil {
		t.Fatal("group wrapper inside trace wrapper encoded")
	}
	// Fixed-version frames: TRACE, trace id, span id, then the banned code.
	head := []byte{
		codeTraceWrap,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2,
	}
	if _, err := c.Unmarshal(append(append([]byte{}, head...), codeTraceWrap)); err == nil {
		t.Fatal("nested trace frame decoded")
	}
	if _, err := c.Unmarshal(append(append([]byte{}, head...), codeGroupWrap)); err == nil {
		t.Fatal("trace frame carrying a group wrapper decoded")
	}
}

// TestTraceEncodeRejects covers the remaining encoder guards: nil inner
// message and an inner kind the codec has never heard of.
func TestTraceEncodeRejects(t *testing.T) {
	c := NewCodec()
	ctx := tracing.Context{Trace: 1, Span: 2}
	if _, err := c.Marshal(tracing.Wrap{Ctx: ctx}); err == nil {
		t.Fatal("nil inner message encoded")
	}
	if _, err := c.Marshal(tracing.Wrap{Ctx: ctx, Inner: unknownMsg{}}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown inner kind: err = %v, want ErrUnknownKind", err)
	}
}

// TestTraceDecodeRejects covers the decoder guards: frames that end
// mid-context or right after it, and an unknown inner code.
func TestTraceDecodeRejects(t *testing.T) {
	c := NewCodec()
	full := []byte{
		codeTraceWrap,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2,
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := c.Unmarshal(full[:cut]); err == nil {
			t.Fatalf("frame cut at %d accepted", cut)
		}
	}
	if _, err := c.Unmarshal(append(append([]byte{}, full...), 0xEF)); !errors.Is(err, ErrUnknownCode) {
		t.Fatalf("unknown inner code: err = %v, want ErrUnknownCode", err)
	}
}

// TestTraceStrictTrailing confirms the top-level strict-decode contract
// through the wrapper — what makes TRACE a clean wire break for
// pre-tracing peers (they fail decoding, not misinterpret).
func TestTraceStrictTrailing(t *testing.T) {
	c := NewCodec()
	b, err := c.Marshal(tracing.Wrap{
		Ctx:   tracing.Context{Trace: 4, Span: 5},
		Inner: rsm.DecideMsg{Inst: 4, V: consensus.Value("v")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unmarshal(append(b, 0)); err == nil {
		t.Fatal("trace frame with trailing byte accepted")
	}
	if _, err := c.Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("trace frame truncated by one byte accepted")
	}
}
