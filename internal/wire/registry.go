package wire

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/consensus/ct"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/detector/alltoall"
	"repro/internal/detector/source"
	"repro/internal/node"
)

// Type codes. Codes are part of the wire format: append only, never
// renumber.
const (
	codeCoreLeader byte = iota + 1
	codeCoreAccuse
	codeAllToAllAlive
	codeSourceAlive
	codeSynodPrepare
	codeSynodPromise
	codeSynodNack
	codeSynodAccept
	codeSynodAccepted
	codeSynodDecide
	codeSynodLearn
	codeSynodRequest
	codeCTEstimate
	codeCTProposal
	codeCTAck
	codeCTNack
	codeCTDecide
	codeRSMRequest
	codeRSMPrepare
	codeRSMPromise
	codeRSMNack
	codeRSMAccept
	codeRSMAccepted
	codeRSMDecide
	codeRSMLearn
	codeCoreRebuff
)

// badType builds the error for an encoder handed the wrong concrete type.
func badType(want string, got node.Message) error {
	return fmt.Errorf("wire: encoder for %s got %T", want, got)
}

// NewCodec returns a codec with every protocol message in this repository
// registered.
func NewCodec() *Codec {
	c := NewEmptyCodec()

	c.Register(codeCoreLeader, core.KindLeader,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(core.LeaderMsg)
			if !ok {
				return badType(core.KindLeader, m)
			}
			e.U64(msg.Epoch)
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			epoch, err := d.U64()
			return core.LeaderMsg{Epoch: epoch}, err
		})

	c.Register(codeCoreAccuse, core.KindAccuse,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(core.AccuseMsg)
			if !ok {
				return badType(core.KindAccuse, m)
			}
			e.U64(msg.Epoch)
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			epoch, err := d.U64()
			return core.AccuseMsg{Epoch: epoch}, err
		})

	c.Register(codeCoreRebuff, core.KindRebuff,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(core.RebuffMsg)
			if !ok {
				return badType(core.KindRebuff, m)
			}
			e.U64(msg.Epoch)
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			epoch, err := d.U64()
			return core.RebuffMsg{Epoch: epoch}, err
		})

	c.Register(codeAllToAllAlive, alltoall.KindAlive,
		func(e *Encoder, m node.Message) error {
			if _, ok := m.(alltoall.AliveMsg); !ok {
				return badType(alltoall.KindAlive, m)
			}
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			return alltoall.AliveMsg{}, nil
		})

	c.Register(codeSourceAlive, source.KindAlive,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(source.AliveMsg)
			if !ok {
				return badType(source.KindAlive, m)
			}
			e.U64s(msg.Counters)
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			counters, err := d.U64s()
			return source.AliveMsg{Counters: counters}, err
		})

	registerSynod(c)
	registerCT(c)
	registerRSM(c)
	return c
}

func registerSynod(c *Codec) {
	c.Register(codeSynodPrepare, synod.KindPrepare,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.PrepareMsg)
			if !ok {
				return badType(synod.KindPrepare, m)
			}
			e.U64(uint64(msg.B))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			return synod.PrepareMsg{B: consensus.Ballot(b)}, err
		})

	c.Register(codeSynodPromise, synod.KindPromise,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.PromiseMsg)
			if !ok {
				return badType(synod.KindPromise, m)
			}
			e.U64(uint64(msg.B))
			e.U64(uint64(msg.AccB))
			e.Str(string(msg.AccV))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			accB, err := d.U64()
			if err != nil {
				return nil, err
			}
			accV, err := d.Str()
			return synod.PromiseMsg{
				B:    consensus.Ballot(b),
				AccB: consensus.Ballot(accB),
				AccV: consensus.Value(accV),
			}, err
		})

	c.Register(codeSynodNack, synod.KindNack,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.NackMsg)
			if !ok {
				return badType(synod.KindNack, m)
			}
			e.U64(uint64(msg.B))
			e.U64(uint64(msg.Promised))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			p, err := d.U64()
			return synod.NackMsg{B: consensus.Ballot(b), Promised: consensus.Ballot(p)}, err
		})

	c.Register(codeSynodAccept, synod.KindAccept,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.AcceptMsg)
			if !ok {
				return badType(synod.KindAccept, m)
			}
			e.U64(uint64(msg.B))
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			v, err := d.Str()
			return synod.AcceptMsg{B: consensus.Ballot(b), V: consensus.Value(v)}, err
		})

	c.Register(codeSynodAccepted, synod.KindAccepted,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.AcceptedMsg)
			if !ok {
				return badType(synod.KindAccepted, m)
			}
			e.U64(uint64(msg.B))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			return synod.AcceptedMsg{B: consensus.Ballot(b)}, err
		})

	c.Register(codeSynodDecide, synod.KindDecide,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.DecideMsg)
			if !ok {
				return badType(synod.KindDecide, m)
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			v, err := d.Str()
			return synod.DecideMsg{V: consensus.Value(v)}, err
		})

	c.Register(codeSynodLearn, synod.KindLearn,
		func(e *Encoder, m node.Message) error {
			if _, ok := m.(synod.LearnMsg); !ok {
				return badType(synod.KindLearn, m)
			}
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			return synod.LearnMsg{}, nil
		})

	c.Register(codeSynodRequest, synod.KindRequest,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(synod.RequestMsg)
			if !ok {
				return badType(synod.KindRequest, m)
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			v, err := d.Str()
			return synod.RequestMsg{V: consensus.Value(v)}, err
		})
}

func registerCT(c *Codec) {
	c.Register(codeCTEstimate, ct.KindEstimate,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(ct.EstimateMsg)
			if !ok {
				return badType(ct.KindEstimate, m)
			}
			if err := e.Int(msg.R); err != nil {
				return err
			}
			e.Str(string(msg.Est))
			return e.Int(msg.TS)
		},
		func(d *Decoder) (node.Message, error) {
			r, err := d.Int()
			if err != nil {
				return nil, err
			}
			est, err := d.Str()
			if err != nil {
				return nil, err
			}
			ts, err := d.Int()
			return ct.EstimateMsg{R: r, Est: consensus.Value(est), TS: ts}, err
		})

	c.Register(codeCTProposal, ct.KindProposal,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(ct.ProposalMsg)
			if !ok {
				return badType(ct.KindProposal, m)
			}
			if err := e.Int(msg.R); err != nil {
				return err
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			r, err := d.Int()
			if err != nil {
				return nil, err
			}
			v, err := d.Str()
			return ct.ProposalMsg{R: r, V: consensus.Value(v)}, err
		})

	c.Register(codeCTAck, ct.KindAck,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(ct.AckMsg)
			if !ok {
				return badType(ct.KindAck, m)
			}
			return e.Int(msg.R)
		},
		func(d *Decoder) (node.Message, error) {
			r, err := d.Int()
			return ct.AckMsg{R: r}, err
		})

	c.Register(codeCTNack, ct.KindNack,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(ct.NackMsg)
			if !ok {
				return badType(ct.KindNack, m)
			}
			return e.Int(msg.R)
		},
		func(d *Decoder) (node.Message, error) {
			r, err := d.Int()
			return ct.NackMsg{R: r}, err
		})

	c.Register(codeCTDecide, ct.KindDecide,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(ct.DecideMsg)
			if !ok {
				return badType(ct.KindDecide, m)
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			v, err := d.Str()
			return ct.DecideMsg{V: consensus.Value(v)}, err
		})
}

func registerRSM(c *Codec) {
	c.Register(codeRSMRequest, rsm.KindRequest,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.RequestMsg)
			if !ok {
				return badType(rsm.KindRequest, m)
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			v, err := d.Str()
			return rsm.RequestMsg{V: consensus.Value(v)}, err
		})

	c.Register(codeRSMPrepare, rsm.KindPrepare,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.PrepareMsg)
			if !ok {
				return badType(rsm.KindPrepare, m)
			}
			e.U64(uint64(msg.B))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			return rsm.PrepareMsg{B: consensus.Ballot(b)}, err
		})

	c.Register(codeRSMPromise, rsm.KindPromise,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.PromiseMsg)
			if !ok {
				return badType(rsm.KindPromise, m)
			}
			e.U64(uint64(msg.B))
			e.U32(uint32(len(msg.Entries)))
			for _, ent := range msg.Entries {
				if err := e.Int(ent.Inst); err != nil {
					return err
				}
				e.U64(uint64(ent.AccB))
				e.Str(string(ent.AccV))
			}
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			n, err := d.U32()
			if err != nil {
				return nil, err
			}
			if n > maxElems {
				return nil, ErrTooLarge
			}
			entries := make([]rsm.PromEntry, n)
			for i := range entries {
				inst, err := d.Int()
				if err != nil {
					return nil, err
				}
				accB, err := d.U64()
				if err != nil {
					return nil, err
				}
				accV, err := d.Str()
				if err != nil {
					return nil, err
				}
				entries[i] = rsm.PromEntry{Inst: inst, AccB: consensus.Ballot(accB), AccV: consensus.Value(accV)}
			}
			if len(entries) == 0 {
				entries = nil
			}
			return rsm.PromiseMsg{B: consensus.Ballot(b), Entries: entries}, nil
		})

	c.Register(codeRSMNack, rsm.KindNack,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.NackMsg)
			if !ok {
				return badType(rsm.KindNack, m)
			}
			e.U64(uint64(msg.B))
			e.U64(uint64(msg.Promised))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			p, err := d.U64()
			return rsm.NackMsg{B: consensus.Ballot(b), Promised: consensus.Ballot(p)}, err
		})

	c.Register(codeRSMAccept, rsm.KindAccept,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.AcceptMsg)
			if !ok {
				return badType(rsm.KindAccept, m)
			}
			e.U64(uint64(msg.B))
			if err := e.Int(msg.Inst); err != nil {
				return err
			}
			e.Str(string(msg.V))
			return e.Int(msg.CommitUpTo)
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			inst, err := d.Int()
			if err != nil {
				return nil, err
			}
			v, err := d.Str()
			if err != nil {
				return nil, err
			}
			commit, err := d.Int()
			return rsm.AcceptMsg{B: consensus.Ballot(b), Inst: inst, V: consensus.Value(v), CommitUpTo: commit}, err
		})

	c.Register(codeRSMAccepted, rsm.KindAccepted,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.AcceptedMsg)
			if !ok {
				return badType(rsm.KindAccepted, m)
			}
			e.U64(uint64(msg.B))
			return e.Int(msg.Inst)
		},
		func(d *Decoder) (node.Message, error) {
			b, err := d.U64()
			if err != nil {
				return nil, err
			}
			inst, err := d.Int()
			return rsm.AcceptedMsg{B: consensus.Ballot(b), Inst: inst}, err
		})

	c.Register(codeRSMDecide, rsm.KindDecide,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.DecideMsg)
			if !ok {
				return badType(rsm.KindDecide, m)
			}
			if err := e.Int(msg.Inst); err != nil {
				return err
			}
			e.Str(string(msg.V))
			return nil
		},
		func(d *Decoder) (node.Message, error) {
			inst, err := d.Int()
			if err != nil {
				return nil, err
			}
			v, err := d.Str()
			return rsm.DecideMsg{Inst: inst, V: consensus.Value(v)}, err
		})

	c.Register(codeRSMLearn, rsm.KindLearn,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(rsm.LearnMsg)
			if !ok {
				return badType(rsm.KindLearn, m)
			}
			return e.Int(msg.FirstGap)
		},
		func(d *Decoder) (node.Message, error) {
			g, err := d.Int()
			return rsm.LearnMsg{FirstGap: g}, err
		})
}
