package wire

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/consensus/ct"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/detector/alltoall"
	"repro/internal/detector/source"
	"repro/internal/node"
	"repro/internal/tracing"
)

// Type codes. Codes are part of the wire format: append only, never
// renumber. The band at and above 0xF0 is reserved for frame version
// markers (see wire.go).
const (
	codeCoreLeader byte = iota + 1
	codeCoreAccuse
	codeAllToAllAlive
	codeSourceAlive
	codeSynodPrepare
	codeSynodPromise
	codeSynodNack
	codeSynodAccept
	codeSynodAccepted
	codeSynodDecide
	codeSynodLearn
	codeSynodRequest
	codeCTEstimate
	codeCTProposal
	codeCTAck
	codeCTNack
	codeCTDecide
	codeRSMRequest
	codeRSMPrepare
	codeRSMPromise
	codeRSMNack
	codeRSMAccept
	codeRSMAccepted
	codeRSMDecide
	codeRSMLearn
	codeCoreRebuff
	codeRSMLeaseGrant
	codeRSMLeaseAck
	codeRSMReadReq
	codeRSMReadReply
	codeGroupWrap
	codeTraceWrap
)

// badType builds the error for an encoder handed the wrong concrete type.
func badType(want string, got node.Message) error {
	return fmt.Errorf("wire: encoder for %s got %T", want, got)
}

// reg registers kind with typed encode/decode functions, folding the
// concrete-type assertion and badType error into the adapter so a new
// message kind registers in a few lines. The field helpers on Encoder and
// Decoder are version-aware, so one registration serves both the fixed and
// varint encodings.
func reg[M node.Message](c *Codec, code byte, kind string, enc func(*Encoder, M) error, dec func(*Decoder) (M, error)) {
	c.Register(code, kind,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(M)
			if !ok {
				return badType(kind, m)
			}
			return enc(e, msg)
		},
		func(d *Decoder) (node.Message, error) {
			return dec(d)
		})
}

// NewCodec returns a codec with every protocol message in this repository
// registered, encoding VersionVarint (decode accepts every version).
func NewCodec() *Codec {
	c := NewEmptyCodec()

	reg(c, codeCoreLeader, core.KindLeader,
		func(e *Encoder, m core.LeaderMsg) error { e.U64(m.Epoch); return nil },
		func(d *Decoder) (core.LeaderMsg, error) {
			epoch, err := d.U64()
			return core.LeaderMsg{Epoch: epoch}, err
		})

	reg(c, codeCoreAccuse, core.KindAccuse,
		func(e *Encoder, m core.AccuseMsg) error { e.U64(m.Epoch); return nil },
		func(d *Decoder) (core.AccuseMsg, error) {
			epoch, err := d.U64()
			return core.AccuseMsg{Epoch: epoch}, err
		})

	reg(c, codeCoreRebuff, core.KindRebuff,
		func(e *Encoder, m core.RebuffMsg) error { e.U64(m.Epoch); return nil },
		func(d *Decoder) (core.RebuffMsg, error) {
			epoch, err := d.U64()
			return core.RebuffMsg{Epoch: epoch}, err
		})

	reg(c, codeAllToAllAlive, alltoall.KindAlive,
		func(e *Encoder, m alltoall.AliveMsg) error { return nil },
		func(d *Decoder) (alltoall.AliveMsg, error) { return alltoall.AliveMsg{}, nil })

	reg(c, codeSourceAlive, source.KindAlive,
		func(e *Encoder, m source.AliveMsg) error { e.U64s(m.Counters); return nil },
		func(d *Decoder) (source.AliveMsg, error) {
			counters, err := d.U64s()
			return source.AliveMsg{Counters: counters}, err
		})

	registerSynod(c)
	registerCT(c)
	registerRSM(c)
	registerGroup(c)
	registerTrace(c)
	return c
}

// registerGroup registers the group-routing wrapper (multi-group sharded
// consensus, DESIGN.md §16): a varint GroupID followed by the inner
// message's own encoding — type code and fields — in the same frame
// version, nested in place with no intermediate buffer. Wrappers do not
// nest: a GROUP code inside a GROUP body is a decode error, which also
// bounds decoder recursion at one level.
//
// Like the LeaseSeq fields on ACCEPT/ACCEPTED (PR 7), the new kind is not
// negotiated: a pre-group node that receives a GROUP frame fails strict
// decoding and (on TCP) drops the connection, so enabling sharded groups
// is a cluster-wide atomic upgrade. Nodes that never send groups remain
// wire-compatible in both directions.
func registerGroup(c *Codec) {
	c.Register(codeGroupWrap, group.KindGroup,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(group.Msg)
			if !ok {
				return badType(group.KindGroup, m)
			}
			if err := e.Int(msg.Group); err != nil {
				return err
			}
			if msg.Inner == nil {
				return fmt.Errorf("wire: group wrapper with nil inner message")
			}
			ent, ok := c.byKind[msg.Inner.Kind()]
			if !ok {
				return fmt.Errorf("%w: %q inside group wrapper", ErrUnknownKind, msg.Inner.Kind())
			}
			if ent.code == codeGroupWrap {
				return fmt.Errorf("wire: group wrapper cannot nest")
			}
			e.buf = append(e.buf, ent.code)
			return ent.enc(e, msg.Inner)
		},
		func(d *Decoder) (node.Message, error) {
			g, err := d.Int()
			if err != nil {
				return nil, err
			}
			if len(d.buf) == 0 {
				return nil, ErrTruncated
			}
			code := d.buf[0]
			if code == codeGroupWrap {
				return nil, fmt.Errorf("wire: group wrapper cannot nest")
			}
			ent, ok := c.byCode[code]
			if !ok {
				return nil, fmt.Errorf("%w: %d inside group wrapper", ErrUnknownCode, code)
			}
			d.buf = d.buf[1:]
			inner, err := ent.dec(d)
			if err != nil {
				return nil, fmt.Errorf("decode %q: %w", ent.kind, err)
			}
			return group.Msg{Group: g, Inner: inner}, nil
		})
}

// registerTrace registers the trace-context wrapper (causal tracing,
// DESIGN.md §17): the trace id and parent span id as varint/fixed u64
// fields, followed by the inner message's own encoding — type code and
// fields — nested in place, exactly the group wrapper's shape. A TRACE
// wrapper may not nest itself, and may not carry a GROUP wrapper: the
// group envelope is always outermost (the demux fast path must see its
// own tag first), so a traced sharded message is GROUP(TRACE(inner)).
// Both rules are encode and decode errors, bounding decoder recursion at
// two levels (GROUP then TRACE) by construction.
//
// Like the GROUP kind and the LeaseSeq fields before it, TRACE is not
// negotiated: a pre-tracing node that receives a TRACE frame fails
// strict decoding and (on TCP) drops the connection, so enabling tracing
// is a cluster-wide atomic upgrade. Clusters that never sample remain
// wire-compatible in both directions — untraced messages encode exactly
// as before.
func registerTrace(c *Codec) {
	c.Register(codeTraceWrap, tracing.KindTrace,
		func(e *Encoder, m node.Message) error {
			msg, ok := m.(tracing.Wrap)
			if !ok {
				return badType(tracing.KindTrace, m)
			}
			e.U64(uint64(msg.Ctx.Trace))
			e.U64(uint64(msg.Ctx.Span))
			if msg.Inner == nil {
				return fmt.Errorf("wire: trace wrapper with nil inner message")
			}
			ent, ok := c.byKind[msg.Inner.Kind()]
			if !ok {
				return fmt.Errorf("%w: %q inside trace wrapper", ErrUnknownKind, msg.Inner.Kind())
			}
			if ent.code == codeTraceWrap {
				return fmt.Errorf("wire: trace wrapper cannot nest")
			}
			if ent.code == codeGroupWrap {
				return fmt.Errorf("wire: trace wrapper cannot carry a group wrapper (wrap the trace inside the group)")
			}
			e.buf = append(e.buf, ent.code)
			return ent.enc(e, msg.Inner)
		},
		func(d *Decoder) (node.Message, error) {
			trace, err := d.U64()
			if err != nil {
				return nil, err
			}
			span, err := d.U64()
			if err != nil {
				return nil, err
			}
			if len(d.buf) == 0 {
				return nil, ErrTruncated
			}
			code := d.buf[0]
			if code == codeTraceWrap {
				return nil, fmt.Errorf("wire: trace wrapper cannot nest")
			}
			if code == codeGroupWrap {
				return nil, fmt.Errorf("wire: trace wrapper cannot carry a group wrapper")
			}
			ent, ok := c.byCode[code]
			if !ok {
				return nil, fmt.Errorf("%w: %d inside trace wrapper", ErrUnknownCode, code)
			}
			d.buf = d.buf[1:]
			inner, err := ent.dec(d)
			if err != nil {
				return nil, fmt.Errorf("decode %q: %w", ent.kind, err)
			}
			return tracing.Wrap{
				Ctx:   tracing.Context{Trace: tracing.TraceID(trace), Span: tracing.SpanID(span)},
				Inner: inner,
			}, nil
		})
}

func registerSynod(c *Codec) {
	reg(c, codeSynodPrepare, synod.KindPrepare,
		func(e *Encoder, m synod.PrepareMsg) error { e.U64(uint64(m.B)); return nil },
		func(d *Decoder) (synod.PrepareMsg, error) {
			b, err := d.U64()
			return synod.PrepareMsg{B: consensus.Ballot(b)}, err
		})

	reg(c, codeSynodPromise, synod.KindPromise,
		func(e *Encoder, m synod.PromiseMsg) error {
			e.U64(uint64(m.B))
			e.U64(uint64(m.AccB))
			e.Str(string(m.AccV))
			return nil
		},
		func(d *Decoder) (synod.PromiseMsg, error) {
			b, err := d.U64()
			if err != nil {
				return synod.PromiseMsg{}, err
			}
			accB, err := d.U64()
			if err != nil {
				return synod.PromiseMsg{}, err
			}
			accV, err := d.Str()
			return synod.PromiseMsg{
				B:    consensus.Ballot(b),
				AccB: consensus.Ballot(accB),
				AccV: consensus.Value(accV),
			}, err
		})

	reg(c, codeSynodNack, synod.KindNack,
		func(e *Encoder, m synod.NackMsg) error {
			e.U64(uint64(m.B))
			e.U64(uint64(m.Promised))
			return nil
		},
		func(d *Decoder) (synod.NackMsg, error) {
			b, err := d.U64()
			if err != nil {
				return synod.NackMsg{}, err
			}
			p, err := d.U64()
			return synod.NackMsg{B: consensus.Ballot(b), Promised: consensus.Ballot(p)}, err
		})

	reg(c, codeSynodAccept, synod.KindAccept,
		func(e *Encoder, m synod.AcceptMsg) error {
			e.U64(uint64(m.B))
			e.Str(string(m.V))
			return nil
		},
		func(d *Decoder) (synod.AcceptMsg, error) {
			b, err := d.U64()
			if err != nil {
				return synod.AcceptMsg{}, err
			}
			v, err := d.Str()
			return synod.AcceptMsg{B: consensus.Ballot(b), V: consensus.Value(v)}, err
		})

	reg(c, codeSynodAccepted, synod.KindAccepted,
		func(e *Encoder, m synod.AcceptedMsg) error { e.U64(uint64(m.B)); return nil },
		func(d *Decoder) (synod.AcceptedMsg, error) {
			b, err := d.U64()
			return synod.AcceptedMsg{B: consensus.Ballot(b)}, err
		})

	reg(c, codeSynodDecide, synod.KindDecide,
		func(e *Encoder, m synod.DecideMsg) error { e.Str(string(m.V)); return nil },
		func(d *Decoder) (synod.DecideMsg, error) {
			v, err := d.Str()
			return synod.DecideMsg{V: consensus.Value(v)}, err
		})

	reg(c, codeSynodLearn, synod.KindLearn,
		func(e *Encoder, m synod.LearnMsg) error { return nil },
		func(d *Decoder) (synod.LearnMsg, error) { return synod.LearnMsg{}, nil })

	reg(c, codeSynodRequest, synod.KindRequest,
		func(e *Encoder, m synod.RequestMsg) error { e.Str(string(m.V)); return nil },
		func(d *Decoder) (synod.RequestMsg, error) {
			v, err := d.Str()
			return synod.RequestMsg{V: consensus.Value(v)}, err
		})
}

func registerCT(c *Codec) {
	reg(c, codeCTEstimate, ct.KindEstimate,
		func(e *Encoder, m ct.EstimateMsg) error {
			if err := e.Int(m.R); err != nil {
				return err
			}
			e.Str(string(m.Est))
			return e.Int(m.TS)
		},
		func(d *Decoder) (ct.EstimateMsg, error) {
			r, err := d.Int()
			if err != nil {
				return ct.EstimateMsg{}, err
			}
			est, err := d.Str()
			if err != nil {
				return ct.EstimateMsg{}, err
			}
			ts, err := d.Int()
			return ct.EstimateMsg{R: r, Est: consensus.Value(est), TS: ts}, err
		})

	reg(c, codeCTProposal, ct.KindProposal,
		func(e *Encoder, m ct.ProposalMsg) error {
			if err := e.Int(m.R); err != nil {
				return err
			}
			e.Str(string(m.V))
			return nil
		},
		func(d *Decoder) (ct.ProposalMsg, error) {
			r, err := d.Int()
			if err != nil {
				return ct.ProposalMsg{}, err
			}
			v, err := d.Str()
			return ct.ProposalMsg{R: r, V: consensus.Value(v)}, err
		})

	reg(c, codeCTAck, ct.KindAck,
		func(e *Encoder, m ct.AckMsg) error { return e.Int(m.R) },
		func(d *Decoder) (ct.AckMsg, error) {
			r, err := d.Int()
			return ct.AckMsg{R: r}, err
		})

	reg(c, codeCTNack, ct.KindNack,
		func(e *Encoder, m ct.NackMsg) error { return e.Int(m.R) },
		func(d *Decoder) (ct.NackMsg, error) {
			r, err := d.Int()
			return ct.NackMsg{R: r}, err
		})

	reg(c, codeCTDecide, ct.KindDecide,
		func(e *Encoder, m ct.DecideMsg) error { e.Str(string(m.V)); return nil },
		func(d *Decoder) (ct.DecideMsg, error) {
			v, err := d.Str()
			return ct.DecideMsg{V: consensus.Value(v)}, err
		})
}

func registerRSM(c *Codec) {
	reg(c, codeRSMRequest, rsm.KindRequest,
		func(e *Encoder, m rsm.RequestMsg) error { e.Str(string(m.V)); return nil },
		func(d *Decoder) (rsm.RequestMsg, error) {
			v, err := d.Str()
			return rsm.RequestMsg{V: consensus.Value(v)}, err
		})

	reg(c, codeRSMPrepare, rsm.KindPrepare,
		func(e *Encoder, m rsm.PrepareMsg) error { e.U64(uint64(m.B)); return nil },
		func(d *Decoder) (rsm.PrepareMsg, error) {
			b, err := d.U64()
			return rsm.PrepareMsg{B: consensus.Ballot(b)}, err
		})

	reg(c, codeRSMPromise, rsm.KindPromise,
		func(e *Encoder, m rsm.PromiseMsg) error {
			e.U64(uint64(m.B))
			e.U32(uint32(len(m.Entries)))
			for _, ent := range m.Entries {
				if err := e.Int(ent.Inst); err != nil {
					return err
				}
				e.U64(uint64(ent.AccB))
				e.Str(string(ent.AccV))
			}
			return nil
		},
		func(d *Decoder) (rsm.PromiseMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.PromiseMsg{}, err
			}
			n, err := d.U32()
			if err != nil {
				return rsm.PromiseMsg{}, err
			}
			if n > maxElems {
				return rsm.PromiseMsg{}, ErrTooLarge
			}
			entries := make([]rsm.PromEntry, n)
			for i := range entries {
				inst, err := d.Int()
				if err != nil {
					return rsm.PromiseMsg{}, err
				}
				accB, err := d.U64()
				if err != nil {
					return rsm.PromiseMsg{}, err
				}
				accV, err := d.Str()
				if err != nil {
					return rsm.PromiseMsg{}, err
				}
				entries[i] = rsm.PromEntry{Inst: inst, AccB: consensus.Ballot(accB), AccV: consensus.Value(accV)}
			}
			if len(entries) == 0 {
				entries = nil
			}
			return rsm.PromiseMsg{B: consensus.Ballot(b), Entries: entries}, nil
		})

	reg(c, codeRSMNack, rsm.KindNack,
		func(e *Encoder, m rsm.NackMsg) error {
			e.U64(uint64(m.B))
			e.U64(uint64(m.Promised))
			return nil
		},
		func(d *Decoder) (rsm.NackMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.NackMsg{}, err
			}
			p, err := d.U64()
			return rsm.NackMsg{B: consensus.Ballot(b), Promised: consensus.Ballot(p)}, err
		})

	// The trailing LeaseSeq on ACCEPT/ACCEPTED (PR 7) is not negotiated:
	// strict decoding makes pre-lease and post-lease frames mutually
	// unreadable, so clusters upgrade atomically across that boundary
	// (DESIGN.md §14).
	reg(c, codeRSMAccept, rsm.KindAccept,
		func(e *Encoder, m rsm.AcceptMsg) error {
			e.U64(uint64(m.B))
			if err := e.Int(m.Inst); err != nil {
				return err
			}
			e.Str(string(m.V))
			if err := e.Int(m.CommitUpTo); err != nil {
				return err
			}
			if err := e.Int(m.MinDone); err != nil {
				return err
			}
			e.U64(m.LeaseSeq)
			return nil
		},
		func(d *Decoder) (rsm.AcceptMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.AcceptMsg{}, err
			}
			inst, err := d.Int()
			if err != nil {
				return rsm.AcceptMsg{}, err
			}
			v, err := d.Str()
			if err != nil {
				return rsm.AcceptMsg{}, err
			}
			commit, err := d.Int()
			if err != nil {
				return rsm.AcceptMsg{}, err
			}
			minDone, err := d.Int()
			if err != nil {
				return rsm.AcceptMsg{}, err
			}
			lease, err := d.U64()
			return rsm.AcceptMsg{B: consensus.Ballot(b), Inst: inst, V: consensus.Value(v), CommitUpTo: commit, MinDone: minDone, LeaseSeq: lease}, err
		})

	reg(c, codeRSMAccepted, rsm.KindAccepted,
		func(e *Encoder, m rsm.AcceptedMsg) error {
			e.U64(uint64(m.B))
			if err := e.Int(m.Inst); err != nil {
				return err
			}
			if err := e.Int(m.Done); err != nil {
				return err
			}
			e.U64(m.LeaseSeq)
			return nil
		},
		func(d *Decoder) (rsm.AcceptedMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.AcceptedMsg{}, err
			}
			inst, err := d.Int()
			if err != nil {
				return rsm.AcceptedMsg{}, err
			}
			done, err := d.Int()
			if err != nil {
				return rsm.AcceptedMsg{}, err
			}
			lease, err := d.U64()
			return rsm.AcceptedMsg{B: consensus.Ballot(b), Inst: inst, Done: done, LeaseSeq: lease}, err
		})

	reg(c, codeRSMDecide, rsm.KindDecide,
		func(e *Encoder, m rsm.DecideMsg) error {
			if err := e.Int(m.Inst); err != nil {
				return err
			}
			e.Str(string(m.V))
			return nil
		},
		func(d *Decoder) (rsm.DecideMsg, error) {
			inst, err := d.Int()
			if err != nil {
				return rsm.DecideMsg{}, err
			}
			v, err := d.Str()
			return rsm.DecideMsg{Inst: inst, V: consensus.Value(v)}, err
		})

	reg(c, codeRSMLearn, rsm.KindLearn,
		func(e *Encoder, m rsm.LearnMsg) error { return e.Int(m.FirstGap) },
		func(d *Decoder) (rsm.LearnMsg, error) {
			g, err := d.Int()
			return rsm.LearnMsg{FirstGap: g}, err
		})

	reg(c, codeRSMLeaseGrant, rsm.KindLeaseGrant,
		func(e *Encoder, m rsm.LeaseGrantMsg) error {
			e.U64(uint64(m.B))
			e.U64(m.Seq)
			return nil
		},
		func(d *Decoder) (rsm.LeaseGrantMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.LeaseGrantMsg{}, err
			}
			seq, err := d.U64()
			return rsm.LeaseGrantMsg{B: consensus.Ballot(b), Seq: seq}, err
		})

	reg(c, codeRSMLeaseAck, rsm.KindLeaseAck,
		func(e *Encoder, m rsm.LeaseAckMsg) error {
			e.U64(uint64(m.B))
			e.U64(m.Seq)
			return nil
		},
		func(d *Decoder) (rsm.LeaseAckMsg, error) {
			b, err := d.U64()
			if err != nil {
				return rsm.LeaseAckMsg{}, err
			}
			seq, err := d.U64()
			return rsm.LeaseAckMsg{B: consensus.Ballot(b), Seq: seq}, err
		})

	reg(c, codeRSMReadReq, rsm.KindReadReq,
		func(e *Encoder, m rsm.ReadReqMsg) error {
			e.U64(m.Seq)
			e.U32(m.Count)
			return e.Int(int(m.Origin))
		},
		func(d *Decoder) (rsm.ReadReqMsg, error) {
			seq, err := d.U64()
			if err != nil {
				return rsm.ReadReqMsg{}, err
			}
			count, err := d.U32()
			if err != nil {
				return rsm.ReadReqMsg{}, err
			}
			origin, err := d.Int()
			return rsm.ReadReqMsg{Seq: seq, Count: count, Origin: node.ID(origin)}, err
		})

	reg(c, codeRSMReadReply, rsm.KindReadReply,
		func(e *Encoder, m rsm.ReadReplyMsg) error {
			e.U64(m.Seq)
			e.U32(m.Count)
			if err := e.Int(m.Index); err != nil {
				return err
			}
			var local uint32
			if m.Local {
				local = 1
			}
			e.U32(local)
			return nil
		},
		func(d *Decoder) (rsm.ReadReplyMsg, error) {
			seq, err := d.U64()
			if err != nil {
				return rsm.ReadReplyMsg{}, err
			}
			count, err := d.U32()
			if err != nil {
				return rsm.ReadReplyMsg{}, err
			}
			index, err := d.Int()
			if err != nil {
				return rsm.ReadReplyMsg{}, err
			}
			local, err := d.U32()
			return rsm.ReadReplyMsg{Seq: seq, Count: count, Index: index, Local: local != 0}, err
		})
}
