package wire

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector/source"
	"repro/internal/node"
)

// benchEnvelope measures the full envelope path for one codec version:
// encode (MarshalEnvelopeAppend into a reused buffer) and decode
// (UnmarshalEnvelope with the pooled decoder). Both halves must stay at
// 0 allocs/op — the live receive loops run them per message — and the
// reported wire-bytes/op metric is what BENCH_wire.json uses to show the
// varint envelope strictly smaller than the fixed one.
func benchEnvelope(b *testing.B, v Version, msg node.Message) {
	c := NewCodec()
	c.SetEncodeVersion(v)
	frame, err := c.MarshalEnvelope(1, msg)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := c.MarshalEnvelopeAppend(buf[:0], 1, msg)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
		b.ReportMetric(float64(len(frame)), "wire-B/msg")
	})

	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env, err := c.UnmarshalEnvelope(frame)
			if err != nil || env.From != 1 {
				b.Fatal("decode failed")
			}
		}
		b.ReportMetric(float64(len(frame)), "wire-B/msg")
	})
}

// BenchmarkEnvelopeVarint is the steady-state heartbeat envelope in the
// varint encoding — the frame every live link carries once per η.
func BenchmarkEnvelopeVarint(b *testing.B) {
	benchEnvelope(b, VersionVarint, core.LeaderMsg{Epoch: 5})
}

// BenchmarkEnvelopeFixed is the same heartbeat under the original
// fixed-width encoding, the baseline the varint codec is measured
// against.
func BenchmarkEnvelopeFixed(b *testing.B) {
	benchEnvelope(b, VersionFixed, core.LeaderMsg{Epoch: 5})
}

// BenchmarkEnvelopeVarintVector exercises the vector-carrying heartbeat
// of the SOURCE-detector (one counter per process, n = 8): varint
// counters shrink with their values, so the steady-state vector frame is
// far below the fixed 8 bytes per entry.
func BenchmarkEnvelopeVarintVector(b *testing.B) {
	benchEnvelope(b, VersionVarint, source.AliveMsg{Counters: []uint64{3, 0, 17, 254, 1, 9, 0, 2}})
}
