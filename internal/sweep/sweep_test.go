package sweep

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := New(workers)
		const n = 203
		var hits [n]atomic.Int32
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d, want %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
}

func TestRunZeroAndOneTasks(t *testing.T) {
	p := New(4)
	p.Run(0, func(i int) { t.Fatalf("task ran for n=0") })
	ran := false
	p.Run(1, func(i int) { ran = true })
	if !ran {
		t.Fatalf("task did not run for n=1")
	}
}

func TestMapResultsAreIndexOrdered(t *testing.T) {
	// The result slice must match a sequential fill exactly, independent of
	// worker count — this is the determinism guarantee experiments rely on.
	want := Map(New(1), 100, func(i int) int { return i * i })
	for _, workers := range []int{2, 4, 16} {
		got := Map(New(workers), 100, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunPropagatesFirstPanic(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic to propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic %q does not carry the task's value", r)
		}
	}()
	p.Run(64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestRunPanicSequential(t *testing.T) {
	p := New(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic from inline path")
		}
	}()
	p.Run(3, func(i int) { panic("inline") })
}

// TestRunStress hammers the pool with many small batches from a racy-looking
// (but correctly synchronized) counter workload. Run under -race this is the
// sweep-pool stress test wired into make test-race.
func TestRunStress(t *testing.T) {
	p := New(8)
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		var sum atomic.Int64
		n := 1 + round%97
		p.Run(n, func(i int) { sum.Add(int64(i + 1)) })
		want := int64(n * (n + 1) / 2)
		if got := sum.Load(); got != want {
			t.Fatalf("round %d: sum = %d, want %d", round, got, want)
		}
		total.Add(sum.Load())
	}
	if total.Load() == 0 {
		t.Fatalf("stress loop did no work")
	}
}

func BenchmarkSweepPool(b *testing.B) {
	p := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(64, func(int) {})
	}
}
