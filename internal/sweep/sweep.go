// Package sweep fans independent simulation runs across CPU cores while
// keeping output deterministic. A parameter sweep is a grid of (cell, seed)
// pairs; each pair builds its own scenario.System on its own sim.Kernel, so
// the runs share no mutable state and can execute on any worker in any
// order. Results are written into index-addressed slots and consumed in
// index order, so the merged output is byte-identical to a sequential run
// regardless of how the scheduler interleaves workers.
//
// Work is claimed from a shared atomic counter rather than pre-partitioned,
// which is a simple form of work stealing: a worker that draws short runs
// keeps claiming more, so a few long cells cannot strand the rest of the
// pool behind one slow worker.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs batches of independent tasks on a fixed number of workers.
// A Pool is stateless between Run calls and safe for reuse; the zero value
// is not usable, call New.
type Pool struct {
	workers int
}

// New returns a pool with the given number of workers. workers <= 0 means
// runtime.GOMAXPROCS(0), i.e. one worker per schedulable core.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes task(i) for every i in [0, n), spread across the pool's
// workers. It returns when all n tasks have finished. Tasks must be
// independent: they may not share mutable state without their own
// synchronization. If any task panics, Run re-panics the first panic on the
// calling goroutine after all workers have stopped claiming work.
//
// With one worker (or n <= 1) the tasks run inline on the calling
// goroutine, so single-worker sweeps have sequential semantics exactly —
// no extra goroutine, no channel, no atomics on the task path.
func (p *Pool) Run(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}

	workers := p.workers
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64 // next unclaimed task index
		panicked atomic.Bool  // a task has panicked; stop claiming
		firstPan atomic.Pointer[panicInfo]
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if panicked.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(task, i, &panicked, &firstPan)
			}
		}()
	}
	wg.Wait()
	if pi := firstPan.Load(); pi != nil {
		panic(fmt.Sprintf("sweep: task %d panicked: %v", pi.index, pi.value))
	}
}

type panicInfo struct {
	index int
	value any
}

// runOne executes one task, converting a panic into a recorded panicInfo so
// the pool can drain cleanly and re-panic on the caller's goroutine.
func runOne(task func(int), i int, panicked *atomic.Bool, first *atomic.Pointer[panicInfo]) {
	defer func() {
		if r := recover(); r != nil {
			first.CompareAndSwap(nil, &panicInfo{index: i, value: r})
			panicked.Store(true)
		}
	}()
	task(i)
}

// Map runs f(i) for every i in [0, n) on the pool and returns the results
// in index order. Because each result lands in its own pre-allocated slot,
// the returned slice is identical to a sequential
//
//	for i := range out { out[i] = f(i) }
//
// no matter how many workers ran or how the runs interleaved. This is the
// deterministic-merge primitive every experiment sweep builds on.
func Map[T any](p *Pool, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.Run(n, func(i int) {
		out[i] = f(i)
	})
	return out
}
