// Package link provides the reusable per-directed-link sender the live
// transports (and future client libraries) are built from: a bounded
// outbound queue with non-blocking enqueue, frame coalescing into one
// vectored write, capped exponential backoff with jitter on re-dial, write
// deadlines, and exact drain-on-stop buffer accounting.
//
// A Sender owns one directed link. The producer side (a node loop, a KV
// client) hands it encoded frames with Enqueue, which never blocks: when
// the queue is full the frame is refused and the producer accounts the
// drop — a dead or stalled peer costs a drop, never latency. All dialing
// and writing happens inside Run, so a slow dial or a stalled write can
// only ever delay this link's own frames.
//
// Buffer ownership: frames carry pooled buffers (Pool). Once Enqueue
// accepts a frame the sender owns its buffer and releases it exactly once
// — written, dropped on write error, or drained at stop. When Enqueue
// refuses a frame, ownership stays with the caller.
package link

import (
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Reconnect backoff bounds: capped exponential with jitter, so a flapping
// peer neither gets hammered nor starves.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffCap  = 500 * time.Millisecond
)

// Frame is one encoded, ready-to-write unit queued on a link. The sender
// writes Buf verbatim (any length prefix is already in it).
type Frame struct {
	// Buf is the pooled encode buffer holding the frame bytes.
	Buf *[]byte
	// Kind tags the frame's message kind for drop accounting.
	Kind obs.Kind
	// Delay is an injected link delay served before the write; a delayed
	// frame ends the batch it would have joined (FIFO order holds).
	Delay time.Duration
}

// Config parameterizes a Sender. Zero values select defaults.
type Config struct {
	// Addr is the dial target for this directed link.
	Addr string
	// Queue bounds the outbound queue (default 128).
	Queue int
	// BatchFrames caps how many queued frames one vectored write
	// coalesces (default 256; 1 disables coalescing).
	BatchFrames int
	// BatchBytes caps the payload bytes one vectored write coalesces
	// (default 64 KiB).
	BatchBytes int
	// BatchWait, when positive, lets a batch that drained the queue wait
	// this long for more frames before flushing. It trades that much
	// first-frame latency for far fewer vectored writes under sustained
	// load, where a sender that keeps pace with its producer otherwise
	// degenerates to one tiny write per frame. 0 (the default) flushes as
	// soon as the queue is empty.
	BatchWait time.Duration
	// BatchWaitMax, when positive, makes the wait adaptive: the sender
	// adjusts it within [0, BatchWaitMax] from observed flush sizes —
	// stretching (doubling) when consecutive flushes degenerate to one
	// or two frames under sustained traffic, backing off toward zero
	// when batches arrive full or the link idles. BatchWait seeds the
	// initial value (clamped to the cap); no hand-tuning needed after
	// that. Zero (the default) keeps the fixed BatchWait behaviour.
	BatchWaitMax time.Duration
	// WriteTimeout bounds each vectored write (default 1s).
	WriteTimeout time.Duration
	// DialTimeout bounds each dial attempt (default 1s).
	DialTimeout time.Duration
	// Seed drives the re-dial jitter.
	Seed int64
	// Pool is the buffer pool frames are released into (required).
	Pool *Pool
	// Stop, when closed, makes Run return and Enqueue refuse frames.
	Stop <-chan struct{}
	// OnDrop is called once for every frame the sender drops after
	// accepting it (write failure, link down, stop-drain). Accounting
	// only — the sender itself releases the buffer. May be nil.
	OnDrop func(Frame)
	// OnFlush is called after every successful vectored write with the
	// frame count and payload bytes it coalesced — the flush-size signal
	// the adaptive controller steers on, exported for telemetry. Runs on
	// the sender goroutine; keep it cheap. May be nil.
	OnFlush func(frames, bytes int)
}

func (c *Config) fill() {
	if c.Queue <= 0 {
		c.Queue = 128
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 256
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.BatchWaitMax > 0 && c.BatchWait > c.BatchWaitMax {
		c.BatchWait = c.BatchWaitMax
	}
}

// Sender owns one directed link: its queue, its connection, and its
// reconnect state.
//
// Buffer ownership: once a frame is in s.frames, this sender owns its
// pooled buffer and releaseBatch returns every one exactly once — whether
// the batch was written or dropped. s.bufs is only a view for the
// vectored write, never an owner.
type Sender struct {
	cfg   Config
	queue chan Frame
	rng   *rand.Rand

	conn     net.Conn
	backoff  time.Duration
	nextDial time.Time

	frames []Frame      // collected batch (owns the buffers)
	bufs   net.Buffers  // reusable writev view over frames
	view   *net.Buffers // heap box handed to WriteTo, which consumes it

	// Adaptive-wait state (BatchWaitMax > 0). wait is atomic only so
	// observers outside the sender goroutine (tests, telemetry) can read
	// it; the controller itself runs on the sender goroutine.
	wait      atomic.Int64 // current wait, nanoseconds
	goal      int          // flush size that counts as "batches arrive full"
	lastFlush time.Time    // previous successful flush (idle detection)

	// dials counts successful connection establishments over the link's
	// lifetime — shared-sender accounting for multi-group clusters, where
	// G groups over one link must still show exactly one dial per
	// directed pair in the steady state.
	dials atomic.Uint64
}

// Adaptive-wait controller constants: the smallest non-zero wait (and the
// step a degenerate flush starts from), the flush gap treated as an idle
// link, and the flush size treated as degenerate.
const (
	adaptStep     = 20 * time.Microsecond
	adaptIdleGap  = 5 * time.Millisecond
	adaptLowWater = 2
)

// NewSender builds a sender for one directed link. Run must be started on
// its own goroutine before frames flow.
func NewSender(cfg Config) *Sender {
	cfg.fill()
	if cfg.Pool == nil {
		panic("link: Config.Pool is required")
	}
	s := &Sender{
		cfg:   cfg,
		queue: make(chan Frame, cfg.Queue),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	s.wait.Store(int64(cfg.BatchWait))
	// "Full" for adaptation purposes is an eighth of the frame cap,
	// clamped to [4, 64]: the point of the wait is syscall amortization,
	// which has flattened long before the hard cap.
	s.goal = cfg.BatchFrames / 8
	if s.goal < 4 {
		s.goal = 4
	} else if s.goal > 64 {
		s.goal = 64
	}
	return s
}

// Wait returns the sender's current batch wait — cfg.BatchWait when the
// controller is off, the adapted value when BatchWaitMax is set. Safe
// from any goroutine.
func (s *Sender) Wait() time.Duration {
	if s.cfg.BatchWaitMax <= 0 {
		return s.cfg.BatchWait
	}
	return time.Duration(s.wait.Load())
}

// Dials returns how many connections this link has established over its
// lifetime: 1 in the steady state (regardless of how many consensus
// groups multiplex over the link), more only after redials. Safe from any
// goroutine.
func (s *Sender) Dials() uint64 { return s.dials.Load() }

// Enqueue offers a frame to the link without blocking. It reports whether
// the sender took ownership; on false (queue full or stopping) the caller
// keeps the buffer and accounts the drop itself.
func (s *Sender) Enqueue(f Frame) bool {
	select {
	case s.queue <- f:
		return true
	default:
		return false
	}
}

// Run is the sender loop; it returns when Config.Stop closes. Call Drain
// afterwards (once no producer can enqueue) to settle buffer accounting.
func (s *Sender) Run() {
	defer s.closeConn()
	for {
		select {
		case <-s.cfg.Stop:
			return
		default:
		}
		select {
		case <-s.cfg.Stop:
			return
		case f := <-s.queue:
			s.collect(f)
		}
	}
}

// Drain accounts and releases every frame still queued. Call only after
// Run has returned and producers have stopped enqueuing.
func (s *Sender) Drain() {
	for {
		select {
		case f := <-s.queue:
			s.dropFrame(f)
		default:
			return
		}
	}
}

// collect gathers the zero-delay frames already queued behind first — up
// to the byte/frame caps — and flushes them with one vectored write. A
// frame carrying an injected link delay ends the batch: everything queued
// before it is flushed first (FIFO order holds), then the delay is served
// and the frame goes out alone, exactly as an un-batched sender would.
// Serving the delay inside the sender goroutine is what models link
// latency: a slow link delays only its own frames.
func (s *Sender) collect(first Frame) {
	if first.Delay > 0 {
		s.delayedSingle(first)
		return
	}
	s.frames = append(s.frames[:0], first)
	bytes := len(*first.Buf)
	maxFrames, maxBytes := s.cfg.BatchFrames, s.cfg.BatchBytes
	// len() on the buffered queue tells how many frames are ready right
	// now; receiving that many plain (no select-with-default per frame)
	// keeps the per-frame drain cost to a bare channel op. Frames enqueued
	// during the drain are picked up by the next len() round or batch.
	for len(s.frames) < maxFrames && bytes < maxBytes {
		n := len(s.queue)
		if n == 0 {
			if !s.awaitMore(&bytes, maxFrames, maxBytes) {
				return // a delayed frame or stop already handled the batch
			}
			break
		}
		for ; n > 0 && len(s.frames) < maxFrames && bytes < maxBytes; n-- {
			f := <-s.queue
			if f.Delay > 0 {
				s.flush()
				s.delayedSingle(f)
				return
			}
			s.frames = append(s.frames, f)
			bytes += len(*f.Buf)
		}
	}
	s.flush()
}

// awaitMore gives an under-filled batch up to BatchWait to grow before the
// flush, collecting frames as they trickle in. It reports whether the
// caller still owns the batch: false means a delayed frame or a stop
// signal ended collection here (the batch was flushed or dropped).
func (s *Sender) awaitMore(bytes *int, maxFrames, maxBytes int) bool {
	wait := s.Wait()
	if wait <= 0 {
		return true
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	for len(s.frames) < maxFrames && *bytes < maxBytes {
		select {
		case <-t.C:
			return true
		case <-s.cfg.Stop:
			s.flush() // best effort before Run returns
			return false
		case f := <-s.queue:
			if f.Delay > 0 {
				s.flush()
				s.delayedSingle(f)
				return false
			}
			s.frames = append(s.frames, f)
			*bytes += len(*f.Buf)
		}
	}
	return true
}

// delayedSingle serves f's injected delay, then writes it on its own.
func (s *Sender) delayedSingle(f Frame) {
	if !s.sleep(f.Delay) {
		s.dropFrame(f) // stopping
		return
	}
	s.frames = append(s.frames[:0], f)
	s.flush()
}

// sleep waits for d, returning false if the sender is stopped first.
func (s *Sender) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		return true
	case <-s.cfg.Stop:
		t.Stop()
		return false
	}
}

// flush writes the collected batch with one vectored write (writev on a
// TCP connection) under one deadline, dialing first if needed. On any
// failure the whole batch is dropped: a partial write poisons the frame
// stream, so the connection is torn down and re-dialed with backoff. TCP's
// reliability is per-connection; across reconnects the link is "reliable
// unless the process is down", which matches the crash-stop model. Either
// way every pooled buffer in the batch is released exactly once.
func (s *Sender) flush() {
	if len(s.frames) == 0 {
		return
	}
	if s.conn == nil && !s.redial() {
		s.releaseBatch(true)
		return
	}
	s.bufs = s.bufs[:0]
	for i := range s.frames {
		s.bufs = append(s.bufs, *s.frames[i].Buf)
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	// WriteTo consumes the Buffers it is called on; hand it a reusable
	// boxed copy of the header so s.bufs keeps its backing array for the
	// next flush and no slice header escapes per flush.
	if s.view == nil {
		s.view = new(net.Buffers)
	}
	*s.view = s.bufs
	_, err := s.view.WriteTo(s.conn)
	*s.view = nil
	for i := range s.bufs {
		s.bufs[i] = nil // do not retain pooled bytes across batches
	}
	s.bufs = s.bufs[:0]
	if err != nil {
		s.closeConn()
		s.scheduleRedial()
		s.releaseBatch(true)
		return
	}
	s.backoff = 0
	n, written := len(s.frames), 0
	for i := range s.frames {
		written += len(*s.frames[i].Buf)
	}
	s.releaseBatch(false)
	if s.cfg.OnFlush != nil {
		s.cfg.OnFlush(n, written)
	}
	s.adapt(n)
}

// adapt is the BatchWait controller (see Config.BatchWaitMax), fed the
// size of each successful flush. Sustained trains of 1–2-frame flushes
// mean the sender is keeping pace with its producer frame-for-frame —
// the degenerate one-writev-per-frame regime — so the wait doubles
// (from adaptStep) toward the cap, letting batches refill. Full batches
// mean the wait is no longer buying amortization, and a long gap since
// the previous flush means the link is idle and the wait only adds
// latency; both halve it toward zero. The result is a per-link wait
// that follows load without hand-tuning.
func (s *Sender) adapt(frames int) {
	if s.cfg.BatchWaitMax <= 0 {
		return
	}
	now := time.Now()
	gap := now.Sub(s.lastFlush)
	s.lastFlush = now
	w := time.Duration(s.wait.Load())
	switch {
	case gap > adaptIdleGap:
		w /= 2
		if w < adaptStep {
			w = 0
		}
	case frames <= adaptLowWater:
		if w < adaptStep {
			w = adaptStep
		} else {
			w *= 2
		}
		if w > s.cfg.BatchWaitMax {
			w = s.cfg.BatchWaitMax
		}
	case frames >= s.goal:
		w /= 2
		if w < adaptStep {
			w = 0
		}
	}
	s.wait.Store(int64(w))
}

// releaseBatch returns every buffer in the current batch to the pool
// exactly once, accounting each frame as dropped when drop is set.
func (s *Sender) releaseBatch(drop bool) {
	for i := range s.frames {
		if drop {
			s.dropFrame(s.frames[i])
		} else {
			s.cfg.Pool.Put(s.frames[i].Buf)
		}
		s.frames[i] = Frame{}
	}
	s.frames = s.frames[:0]
}

// redial re-establishes the connection, honouring the backoff window.
// Frames arriving while the link is down are dropped immediately — like
// packets sent into a dead link — so send latency stays bounded.
func (s *Sender) redial() bool {
	if !s.nextDial.IsZero() && time.Now().Before(s.nextDial) {
		return false
	}
	conn, err := net.DialTimeout("tcp", s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		s.scheduleRedial()
		return false
	}
	s.conn = conn
	s.backoff = 0
	s.nextDial = time.Time{}
	s.dials.Add(1)
	return true
}

// scheduleRedial advances the capped exponential backoff and jitters the
// next dial time over [backoff/2, backoff].
func (s *Sender) scheduleRedial() {
	if s.backoff == 0 {
		s.backoff = dialBackoffBase
	} else if s.backoff *= 2; s.backoff > dialBackoffCap {
		s.backoff = dialBackoffCap
	}
	wait := s.backoff/2 + time.Duration(s.rng.Int63n(int64(s.backoff/2)+1))
	s.nextDial = time.Now().Add(wait)
}

func (s *Sender) closeConn() {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}

// dropFrame accounts one frame as dropped and returns its buffer.
func (s *Sender) dropFrame(f Frame) {
	if s.cfg.OnDrop != nil {
		s.cfg.OnDrop(f)
	}
	s.cfg.Pool.Put(f.Buf)
}
