package link

import (
	"testing"
	"time"
)

// flushSender builds a started sender against a fresh echo server whose
// flush sizes stream to the returned channel.
func flushSender(t *testing.T, cfg Config) (*Sender, *Pool, <-chan int, <-chan []byte) {
	t.Helper()
	addr, out := echoServer(t)
	pool := NewPool(64)
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	flushes := make(chan int, 2048) // never block the sender goroutine
	cfg.Addr = addr
	cfg.Pool = pool
	cfg.Stop = stop
	cfg.OnFlush = func(frames, bytes int) { flushes <- frames }
	s := NewSender(cfg)
	go s.Run()
	return s, pool, flushes, out
}

// TestAwaitMoreGrowsBatchOnTrickle: with BatchWait set, a batch that
// drained the queue waits for stragglers instead of flushing one frame
// per writev — the trickled frames land in a single flush.
func TestAwaitMoreGrowsBatchOnTrickle(t *testing.T) {
	s, pool, flushes, out := flushSender(t, Config{BatchWait: 400 * time.Millisecond, Seed: 11})

	for i := 0; i < 3; i++ {
		if !s.Enqueue(frame(pool, []byte{byte(i)})) {
			t.Fatalf("enqueue %d refused", i)
		}
		time.Sleep(30 * time.Millisecond) // trickle well inside the wait
	}
	select {
	case n := <-flushes:
		if n != 3 {
			t.Fatalf("first flush coalesced %d frames, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no flush before the batch wait elapsed")
	}
	for i := 0; i < 3; i++ {
		select {
		case b := <-out:
			if b[0] != byte(i) {
				t.Fatalf("frame %d delivered as % x", i, b)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never delivered", i)
		}
	}
}

// TestAwaitMoreStopEndsCollection: a stop signal arriving mid-wait ends
// collection with a best-effort flush, and Run returns promptly rather
// than sitting out the full BatchWait.
func TestAwaitMoreStopEndsCollection(t *testing.T) {
	addr, out := echoServer(t)
	pool := NewPool(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	s := NewSender(Config{Addr: addr, Pool: pool, Stop: stop, BatchWait: time.Minute, Seed: 12})
	go func() {
		s.Run()
		close(done)
	}()

	if !s.Enqueue(frame(pool, []byte{0x5A})) {
		t.Fatal("enqueue refused")
	}
	time.Sleep(50 * time.Millisecond) // let the sender enter awaitMore
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after stop during the batch wait")
	}
	select {
	case b := <-out:
		if b[0] != 0x5A {
			t.Fatalf("delivered % x", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("best-effort flush on stop never delivered the frame")
	}
	s.Drain()
	if got := pool.Balance(); got != 0 {
		t.Fatalf("pool balance = %d, want 0", got)
	}
}

// TestAwaitMoreDelayedFrameEndsBatch: a frame carrying an injected link
// delay terminates the wait — the collected batch flushes first, then
// the delayed frame goes out alone, preserving FIFO order.
func TestAwaitMoreDelayedFrameEndsBatch(t *testing.T) {
	s, pool, flushes, out := flushSender(t, Config{BatchWait: 10 * time.Second, Seed: 13})

	if !s.Enqueue(frame(pool, []byte{1})) {
		t.Fatal("enqueue refused")
	}
	time.Sleep(50 * time.Millisecond) // sender is now waiting for more
	f := frame(pool, []byte{2})
	f.Delay = 30 * time.Millisecond
	if !s.Enqueue(f) {
		t.Fatal("delayed enqueue refused")
	}
	// Two one-frame flushes, long before the 10s wait could expire.
	for i := 0; i < 2; i++ {
		select {
		case n := <-flushes:
			if n != 1 {
				t.Fatalf("flush %d coalesced %d frames, want 1", i, n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("flush %d never happened — delayed frame did not end the batch", i)
		}
	}
	for i, want := range []byte{1, 2} {
		select {
		case b := <-out:
			if b[0] != want {
				t.Fatalf("frame %d delivered as % x, want %d", i, b, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never delivered", i)
		}
	}
}

// TestAdaptStretchesOnDegenerateFlushes: trains of 1–2-frame flushes in
// dense traffic double the wait from adaptStep up to the cap.
func TestAdaptStretchesOnDegenerateFlushes(t *testing.T) {
	pool := NewPool(64)
	s := NewSender(Config{Addr: "127.0.0.1:1", Pool: pool, BatchWaitMax: time.Millisecond, Seed: 14})
	if got := s.Wait(); got != 0 {
		t.Fatalf("initial wait = %v, want 0", got)
	}
	for i := 0; i < 12; i++ {
		s.lastFlush = time.Now() // dense: no idle gap between flushes
		s.adapt(1)
	}
	if got := s.Wait(); got != time.Millisecond {
		t.Fatalf("wait after degenerate flush train = %v, want cap %v", got, time.Millisecond)
	}
}

// TestAdaptBacksOffOnFullFlushes: once batches arrive at the goal size,
// the wait is no longer buying amortization and halves back to zero.
func TestAdaptBacksOffOnFullFlushes(t *testing.T) {
	pool := NewPool(64)
	s := NewSender(Config{
		Addr: "127.0.0.1:1", Pool: pool,
		BatchWait: time.Millisecond, BatchWaitMax: time.Millisecond, Seed: 15,
	})
	if got := s.Wait(); got != time.Millisecond {
		t.Fatalf("seeded wait = %v, want %v", got, time.Millisecond)
	}
	for i := 0; i < 12; i++ {
		s.lastFlush = time.Now()
		s.adapt(s.goal)
	}
	if got := s.Wait(); got != 0 {
		t.Fatalf("wait after full-flush train = %v, want 0", got)
	}
}

// TestAdaptTreatsIdleGapAsBackoff: a long gap since the previous flush
// means the link idled — even a tiny flush must not stretch the wait.
func TestAdaptTreatsIdleGapAsBackoff(t *testing.T) {
	pool := NewPool(64)
	s := NewSender(Config{
		Addr: "127.0.0.1:1", Pool: pool,
		BatchWait: time.Millisecond, BatchWaitMax: time.Millisecond, Seed: 16,
	})
	s.lastFlush = time.Now().Add(-100 * time.Millisecond)
	s.adapt(1)
	if got := s.Wait(); got >= time.Millisecond {
		t.Fatalf("wait after idle gap = %v, want < %v", got, time.Millisecond)
	}
}

// TestAdaptiveWaitEndToEnd drives a burst through an adaptive sender
// while a second goroutine polls Wait(), exercising the controller and
// its cross-goroutine read under the race detector.
func TestAdaptiveWaitEndToEnd(t *testing.T) {
	s, pool, flushes, out := flushSender(t, Config{
		BatchWaitMax: 200 * time.Microsecond, Seed: 17, Queue: 1024,
	})
	poll := make(chan struct{})
	go func() {
		defer close(poll)
		for i := 0; i < 100; i++ {
			_ = s.Wait()
			time.Sleep(time.Millisecond)
		}
	}()
	const n = 400
	for i := 0; i < n; i++ {
		f := frame(pool, []byte{byte(i)})
		for !s.Enqueue(f) {
			time.Sleep(time.Millisecond)
		}
	}
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case <-out:
			got++
		case <-deadline:
			t.Fatalf("delivered %d/%d frames", got, n)
		}
	}
	<-poll
	// Drain the flush channel so nothing blocks the sender during cleanup.
	for {
		select {
		case <-flushes:
		default:
			return
		}
	}
}
