package link

import (
	"sync"
	"sync/atomic"
)

// Pool pools encode buffers so steady-state sends marshal into reused
// memory instead of allocating per message. Buffers are pointers to slices
// (the pool stores interface values; a *[]byte avoids boxing the header).
//
// The pool counts gets and puts: every buffer handed out must come back
// exactly once, whatever path the frame takes — written, queue-full drop,
// injected drop, mid-batch write error, shutdown. Tests quiesce a cluster
// and assert Balance() == 0, which catches both leaks (balance stays
// positive) and double puts (balance goes negative).
type Pool struct {
	pool sync.Pool
	gets atomic.Int64
	puts atomic.Int64
}

// NewPool returns a pool whose fresh buffers start with the given
// capacity.
func NewPool(capacity int) *Pool {
	p := &Pool{}
	p.pool.New = func() any {
		b := make([]byte, 0, capacity)
		return &b
	}
	return p
}

// Get hands out a buffer (length 0, arbitrary capacity).
func (p *Pool) Get() *[]byte {
	p.gets.Add(1)
	return p.pool.Get().(*[]byte)
}

// Put returns a buffer. The caller must not retain it.
func (p *Pool) Put(b *[]byte) {
	p.puts.Add(1)
	p.pool.Put(b)
}

// Balance returns the number of outstanding buffers: gets minus puts.
func (p *Pool) Balance() int64 { return p.gets.Load() - p.puts.Load() }
