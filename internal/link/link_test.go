package link

import (
	"encoding/binary"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// frame builds a pooled length-prefixed frame holding payload.
func frame(p *Pool, payload []byte) Frame {
	bp := p.Get()
	b := append((*bp)[:0], 0, 0, 0, 0)
	b = append(b, payload...)
	binary.BigEndian.PutUint32(b[:4], uint32(len(payload)))
	*bp = b
	return Frame{Buf: bp}
}

// echoServer accepts one connection and streams decoded payloads to out.
func echoServer(t *testing.T) (addr string, out <-chan []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	ch := make(chan []byte, 1024)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var header [4]byte
				for {
					if _, err := io.ReadFull(conn, header[:]); err != nil {
						return
					}
					body := make([]byte, binary.BigEndian.Uint32(header[:]))
					if _, err := io.ReadFull(conn, body); err != nil {
						return
					}
					ch <- body
				}
			}()
		}
	}()
	return ln.Addr().String(), ch
}

func TestSenderDeliversInFIFOOrder(t *testing.T) {
	addr, out := echoServer(t)
	pool := NewPool(64)
	stop := make(chan struct{})
	s := NewSender(Config{Addr: addr, Pool: pool, Stop: stop, Seed: 1})
	go s.Run()
	defer close(stop)

	const n = 200
	for i := 0; i < n; i++ {
		// A refusal here is backpressure (the first dial is still in
		// flight), not an error: retry until the sender drains the queue.
		f := frame(pool, []byte{byte(i)})
		for !s.Enqueue(f) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case b := <-out:
			if len(b) != 1 || b[0] != byte(i) {
				t.Fatalf("frame %d: got % x", i, b)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for frame %d", i)
		}
	}
}

func TestEnqueueNeverBlocksWhenPeerIsDown(t *testing.T) {
	pool := NewPool(64)
	stop := make(chan struct{})
	var drops atomic.Int64
	s := NewSender(Config{
		Addr: "127.0.0.1:1", // nothing listens here
		Pool: pool, Stop: stop, Seed: 2, Queue: 4,
		OnDrop: func(Frame) { drops.Add(1) },
	})
	go s.Run()

	// Far more frames than the queue holds: every Enqueue must return
	// immediately, accepted or not.
	refused := 0
	start := time.Now()
	for i := 0; i < 500; i++ {
		f := frame(pool, []byte{1})
		if !s.Enqueue(f) {
			refused++
			pool.Put(f.Buf) // refused: ownership stayed with us
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("500 enqueues against a dead peer took %v", elapsed)
	}
	if refused == 0 {
		t.Fatal("queue of 4 never refused a frame against a dead peer")
	}
	close(stop)
	// Give Run a moment to exit, then settle accounting.
	time.Sleep(50 * time.Millisecond)
	s.Drain()
	if got := pool.Balance(); got != 0 {
		t.Fatalf("pool balance after drain = %d, want 0", got)
	}
}

func TestDrainAccountsEveryQueuedFrame(t *testing.T) {
	pool := NewPool(64)
	stop := make(chan struct{})
	var drops atomic.Int64
	s := NewSender(Config{
		Addr: "127.0.0.1:1", Pool: pool, Stop: stop, Seed: 3, Queue: 16,
		OnDrop: func(Frame) { drops.Add(1) },
	})
	// Never started: everything stays queued.
	const n = 10
	for i := 0; i < n; i++ {
		if !s.Enqueue(frame(pool, []byte{byte(i)})) {
			t.Fatalf("enqueue %d refused with empty queue", i)
		}
	}
	close(stop)
	s.Drain()
	if got := drops.Load(); got != n {
		t.Fatalf("OnDrop called %d times, want %d", got, n)
	}
	if got := pool.Balance(); got != 0 {
		t.Fatalf("pool balance = %d, want 0", got)
	}
}

func TestSenderReconnectsAfterPeerRestarts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // peer is down at first

	pool := NewPool(64)
	stop := make(chan struct{})
	s := NewSender(Config{Addr: addr, Pool: pool, Stop: stop, Seed: 4})
	go s.Run()
	defer close(stop)

	// Sends while down are dropped (bounded latency, never an error).
	for i := 0; i < 5; i++ {
		s.Enqueue(frame(pool, []byte{0xFF}))
		time.Sleep(10 * time.Millisecond)
	}

	// Peer comes back on the same address; the sender must re-dial.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	got := make(chan byte, 64)
	go func() {
		conn, err := ln2.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var header [4]byte
		for {
			if _, err := io.ReadFull(conn, header[:]); err != nil {
				return
			}
			body := make([]byte, binary.BigEndian.Uint32(header[:]))
			if _, err := io.ReadFull(conn, body); err != nil {
				return
			}
			got <- body[0]
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		s.Enqueue(frame(pool, []byte{0xAB}))
		select {
		case b := <-got:
			if b != 0xAB {
				t.Fatalf("delivered % x after reconnect", b)
			}
			return
		case <-deadline:
			t.Fatal("sender never reconnected")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
