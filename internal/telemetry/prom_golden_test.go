package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestPrometheusExpositionGolden pins the exact exposition text for a
// deterministically driven collector — every metric family WritePrometheus
// emits, including the +Inf bucket and the seconds-unit cumulative le
// values of every histogram. Scrapers and the Grafana dashboards parse
// this text by name and label; a prom.go refactor that reorders families,
// drops the +Inf line, or switches bucket units must fail here instead of
// silently breaking them. If the change is intentional, update the golden
// below and the dashboards together.
func TestPrometheusExpositionGolden(t *testing.T) {
	ms := func(d int) sim.Time { return sim.Time(d) * sim.Time(time.Millisecond) }

	st := metrics.NewMessageStats(2)
	c := New(2,
		WithStats(st),
		WithClock(func() sim.Time { return ms(2000) }),
		WithQuiescenceWindow(time.Second),
	)

	// Both processes converge on leader 1 at 200ms: one election, two
	// per-process transitions, 200ms of initial-election downtime.
	c.LeaderChanged(ms(100), 0, 1)
	c.LeaderChanged(ms(200), 1, 1)

	// Wire traffic inside the 1s quiescence window ending at the 2s scrape
	// instant: two LEADER heartbeats on 0→1 and one dropped ACCEPT on 1→0,
	// so active_links reads 2 and non_leader_sends counts only p0's sends.
	leaderK, acceptK := obs.Intern("LEADER"), obs.Intern("ACCEPT")
	st.OnSend(ms(1500), 0, 1, leaderK)
	st.OnSend(ms(1750), 0, 1, leaderK)
	st.OnDeliver(ms(1500), 0, 1, leaderK)
	st.OnDeliver(ms(1750), 0, 1, leaderK)
	st.OnWireBytes(ms(1500), 0, 1, leaderK, 64)
	st.OnWireBytes(ms(1750), 0, 1, leaderK, 64)
	st.OnSend(ms(1600), 1, 0, acceptK)
	st.OnDrop(ms(1600), 1, 0, acceptK)

	// Heartbeat inter-arrival: 250ms between the two deliveries.
	c.OnDeliver(ms(1500), 0, 1, leaderK)
	c.OnDeliver(ms(1750), 0, 1, leaderK)

	// Two decisions at 1ms and 3ms proposer-side latency.
	c.Decided(consensus.Decision{By: 0, Elapsed: 1 * time.Millisecond})
	c.Decided(consensus.Decision{By: 1, Elapsed: 3 * time.Millisecond})

	// Read path: p0 holds the lease and has served 10 local + 2 fallback
	// reads; p1 has 5 local + 1 fallback from an earlier reign.
	c.WatchLease(func() (bool, uint64, uint64) { return true, 10, 2 })
	c.WatchLease(func() (bool, uint64, uint64) { return false, 5, 1 })

	// One vectored flush of 3 frames / 200 bytes, and the durability view:
	// a 500µs fsync, a 48-byte append, a 20ms recovery.
	c.RecordFlush(0, 1, 3, 200)
	c.RecordFsync(0, 500*time.Microsecond)
	c.RecordWALAppend(0, 48)
	c.RecordRecovery(1, 20*time.Millisecond)

	// One sharded group with its own decision stream and lease probe.
	rec := consensus.NewRecorder()
	c.WatchGroupRecorder(2, node.ID(0), rec)
	rec.Record(consensus.Decision{Instance: 0, By: 0, Elapsed: 1 * time.Millisecond})
	c.WatchGroupLease(2, func() (bool, uint64, uint64) { return true, 7, 0 })

	var buf bytes.Buffer
	c.WritePrometheus(&buf)
	got := buf.String()

	if got != promGolden {
		gl, wl := strings.Split(got, "\n"), strings.Split(promGolden, "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got:  %q\n  want: %q", i+1, g, w)
			}
		}
		t.Fatalf("exposition text diverged from golden (full output):\n%s", got)
	}
}

const promGolden = `# HELP omega_sent_total Messages handed to the links.
# TYPE omega_sent_total counter
omega_sent_total 3
# HELP omega_delivered_total Messages delivered.
# TYPE omega_delivered_total counter
omega_delivered_total 2
# HELP omega_dropped_total Messages lost in transit.
# TYPE omega_dropped_total counter
omega_dropped_total 1
# HELP omega_wire_bytes_total Encoded bytes handed to the links.
# TYPE omega_wire_bytes_total counter
omega_wire_bytes_total 128
# HELP omega_sent_kind_total Messages sent per kind.
# TYPE omega_sent_kind_total counter
omega_sent_kind_total{kind="LEADER"} 2
omega_sent_kind_total{kind="ACCEPT"} 1
# HELP omega_sent_by_total Messages sent per process.
# TYPE omega_sent_by_total counter
omega_sent_by_total{process="0"} 2
omega_sent_by_total{process="1"} 1
# HELP omega_active_links Directed links that carried a message within the quiescence window.
# TYPE omega_active_links gauge
omega_active_links 2
# HELP omega_quiescence_window_seconds Sliding window used by omega_active_links.
# TYPE omega_quiescence_window_seconds gauge
omega_quiescence_window_seconds 1
# HELP omega_non_leader_sends_total Messages sent by processes other than the stable leader.
# TYPE omega_non_leader_sends_total gauge
omega_non_leader_sends_total 2
# HELP omega_leader Cluster-wide agreed leader id, -1 while disputed.
# TYPE omega_leader gauge
omega_leader 1
# HELP omega_time_since_last_election_seconds How long the current agreement has held, -1 before the first.
# TYPE omega_time_since_last_election_seconds gauge
omega_time_since_last_election_seconds 1.8
# HELP omega_elections_total Times cluster-wide agreement formed.
# TYPE omega_elections_total counter
omega_elections_total 1
# HELP omega_leader_changes_total Per-process leader-output transitions.
# TYPE omega_leader_changes_total counter
omega_leader_changes_total 2
# HELP omega_decides_total Consensus decisions learned across watched recorders.
# TYPE omega_decides_total counter
omega_decides_total 3
# HELP rsm_lease_held Watched processes currently holding the leader lease (0 or 1 when healthy).
# TYPE rsm_lease_held gauge
rsm_lease_held 1
# HELP rsm_reads_local_total Reads served locally under a lease, with zero consensus messages.
# TYPE rsm_reads_local_total counter
rsm_reads_local_total 15
# HELP rsm_reads_fallback_total Reads that took the phase-2 no-op barrier.
# TYPE rsm_reads_fallback_total counter
rsm_reads_fallback_total 3
# TYPE omega_election_downtime_seconds histogram
omega_election_downtime_seconds_bucket{le="1e-09"} 0
omega_election_downtime_seconds_bucket{le="2e-09"} 0
omega_election_downtime_seconds_bucket{le="4e-09"} 0
omega_election_downtime_seconds_bucket{le="8e-09"} 0
omega_election_downtime_seconds_bucket{le="1.6e-08"} 0
omega_election_downtime_seconds_bucket{le="3.2e-08"} 0
omega_election_downtime_seconds_bucket{le="6.4e-08"} 0
omega_election_downtime_seconds_bucket{le="1.28e-07"} 0
omega_election_downtime_seconds_bucket{le="2.56e-07"} 0
omega_election_downtime_seconds_bucket{le="5.12e-07"} 0
omega_election_downtime_seconds_bucket{le="1.024e-06"} 0
omega_election_downtime_seconds_bucket{le="2.048e-06"} 0
omega_election_downtime_seconds_bucket{le="4.096e-06"} 0
omega_election_downtime_seconds_bucket{le="8.192e-06"} 0
omega_election_downtime_seconds_bucket{le="1.6384e-05"} 0
omega_election_downtime_seconds_bucket{le="3.2768e-05"} 0
omega_election_downtime_seconds_bucket{le="6.5536e-05"} 0
omega_election_downtime_seconds_bucket{le="0.000131072"} 0
omega_election_downtime_seconds_bucket{le="0.000262144"} 0
omega_election_downtime_seconds_bucket{le="0.000524288"} 0
omega_election_downtime_seconds_bucket{le="0.001048576"} 0
omega_election_downtime_seconds_bucket{le="0.002097152"} 0
omega_election_downtime_seconds_bucket{le="0.004194304"} 0
omega_election_downtime_seconds_bucket{le="0.008388608"} 0
omega_election_downtime_seconds_bucket{le="0.016777216"} 0
omega_election_downtime_seconds_bucket{le="0.033554432"} 0
omega_election_downtime_seconds_bucket{le="0.067108864"} 0
omega_election_downtime_seconds_bucket{le="0.134217728"} 0
omega_election_downtime_seconds_bucket{le="0.268435456"} 1
omega_election_downtime_seconds_bucket{le="+Inf"} 1
omega_election_downtime_seconds_sum 0.2
omega_election_downtime_seconds_count 1
# TYPE omega_decision_latency_seconds histogram
omega_decision_latency_seconds_bucket{le="1e-09"} 0
omega_decision_latency_seconds_bucket{le="2e-09"} 0
omega_decision_latency_seconds_bucket{le="4e-09"} 0
omega_decision_latency_seconds_bucket{le="8e-09"} 0
omega_decision_latency_seconds_bucket{le="1.6e-08"} 0
omega_decision_latency_seconds_bucket{le="3.2e-08"} 0
omega_decision_latency_seconds_bucket{le="6.4e-08"} 0
omega_decision_latency_seconds_bucket{le="1.28e-07"} 0
omega_decision_latency_seconds_bucket{le="2.56e-07"} 0
omega_decision_latency_seconds_bucket{le="5.12e-07"} 0
omega_decision_latency_seconds_bucket{le="1.024e-06"} 0
omega_decision_latency_seconds_bucket{le="2.048e-06"} 0
omega_decision_latency_seconds_bucket{le="4.096e-06"} 0
omega_decision_latency_seconds_bucket{le="8.192e-06"} 0
omega_decision_latency_seconds_bucket{le="1.6384e-05"} 0
omega_decision_latency_seconds_bucket{le="3.2768e-05"} 0
omega_decision_latency_seconds_bucket{le="6.5536e-05"} 0
omega_decision_latency_seconds_bucket{le="0.000131072"} 0
omega_decision_latency_seconds_bucket{le="0.000262144"} 0
omega_decision_latency_seconds_bucket{le="0.000524288"} 0
omega_decision_latency_seconds_bucket{le="0.001048576"} 2
omega_decision_latency_seconds_bucket{le="0.002097152"} 2
omega_decision_latency_seconds_bucket{le="0.004194304"} 3
omega_decision_latency_seconds_bucket{le="+Inf"} 3
omega_decision_latency_seconds_sum 0.005
omega_decision_latency_seconds_count 3
# TYPE omega_heartbeat_interarrival_seconds histogram
omega_heartbeat_interarrival_seconds_bucket{le="1e-09"} 0
omega_heartbeat_interarrival_seconds_bucket{le="2e-09"} 0
omega_heartbeat_interarrival_seconds_bucket{le="4e-09"} 0
omega_heartbeat_interarrival_seconds_bucket{le="8e-09"} 0
omega_heartbeat_interarrival_seconds_bucket{le="1.6e-08"} 0
omega_heartbeat_interarrival_seconds_bucket{le="3.2e-08"} 0
omega_heartbeat_interarrival_seconds_bucket{le="6.4e-08"} 0
omega_heartbeat_interarrival_seconds_bucket{le="1.28e-07"} 0
omega_heartbeat_interarrival_seconds_bucket{le="2.56e-07"} 0
omega_heartbeat_interarrival_seconds_bucket{le="5.12e-07"} 0
omega_heartbeat_interarrival_seconds_bucket{le="1.024e-06"} 0
omega_heartbeat_interarrival_seconds_bucket{le="2.048e-06"} 0
omega_heartbeat_interarrival_seconds_bucket{le="4.096e-06"} 0
omega_heartbeat_interarrival_seconds_bucket{le="8.192e-06"} 0
omega_heartbeat_interarrival_seconds_bucket{le="1.6384e-05"} 0
omega_heartbeat_interarrival_seconds_bucket{le="3.2768e-05"} 0
omega_heartbeat_interarrival_seconds_bucket{le="6.5536e-05"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.000131072"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.000262144"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.000524288"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.001048576"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.002097152"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.004194304"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.008388608"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.016777216"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.033554432"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.067108864"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.134217728"} 0
omega_heartbeat_interarrival_seconds_bucket{le="0.268435456"} 1
omega_heartbeat_interarrival_seconds_bucket{le="+Inf"} 1
omega_heartbeat_interarrival_seconds_sum 0.25
omega_heartbeat_interarrival_seconds_count 1
# TYPE link_flush_frames histogram
link_flush_frames_bucket{le="1"} 0
link_flush_frames_bucket{le="2"} 0
link_flush_frames_bucket{le="4"} 1
link_flush_frames_bucket{le="+Inf"} 1
link_flush_frames_sum 3
link_flush_frames_count 1
# TYPE link_flush_bytes histogram
link_flush_bytes_bucket{le="1"} 0
link_flush_bytes_bucket{le="2"} 0
link_flush_bytes_bucket{le="4"} 0
link_flush_bytes_bucket{le="8"} 0
link_flush_bytes_bucket{le="16"} 0
link_flush_bytes_bucket{le="32"} 0
link_flush_bytes_bucket{le="64"} 0
link_flush_bytes_bucket{le="128"} 0
link_flush_bytes_bucket{le="256"} 1
link_flush_bytes_bucket{le="+Inf"} 1
link_flush_bytes_sum 200
link_flush_bytes_count 1
# TYPE wal_fsync_seconds histogram
wal_fsync_seconds_bucket{le="1e-09"} 0
wal_fsync_seconds_bucket{le="2e-09"} 0
wal_fsync_seconds_bucket{le="4e-09"} 0
wal_fsync_seconds_bucket{le="8e-09"} 0
wal_fsync_seconds_bucket{le="1.6e-08"} 0
wal_fsync_seconds_bucket{le="3.2e-08"} 0
wal_fsync_seconds_bucket{le="6.4e-08"} 0
wal_fsync_seconds_bucket{le="1.28e-07"} 0
wal_fsync_seconds_bucket{le="2.56e-07"} 0
wal_fsync_seconds_bucket{le="5.12e-07"} 0
wal_fsync_seconds_bucket{le="1.024e-06"} 0
wal_fsync_seconds_bucket{le="2.048e-06"} 0
wal_fsync_seconds_bucket{le="4.096e-06"} 0
wal_fsync_seconds_bucket{le="8.192e-06"} 0
wal_fsync_seconds_bucket{le="1.6384e-05"} 0
wal_fsync_seconds_bucket{le="3.2768e-05"} 0
wal_fsync_seconds_bucket{le="6.5536e-05"} 0
wal_fsync_seconds_bucket{le="0.000131072"} 0
wal_fsync_seconds_bucket{le="0.000262144"} 0
wal_fsync_seconds_bucket{le="0.000524288"} 1
wal_fsync_seconds_bucket{le="+Inf"} 1
wal_fsync_seconds_sum 0.0005
wal_fsync_seconds_count 1
# TYPE wal_append_bytes histogram
wal_append_bytes_bucket{le="1"} 0
wal_append_bytes_bucket{le="2"} 0
wal_append_bytes_bucket{le="4"} 0
wal_append_bytes_bucket{le="8"} 0
wal_append_bytes_bucket{le="16"} 0
wal_append_bytes_bucket{le="32"} 0
wal_append_bytes_bucket{le="64"} 1
wal_append_bytes_bucket{le="+Inf"} 1
wal_append_bytes_sum 48
wal_append_bytes_count 1
# TYPE wal_recovery_seconds histogram
wal_recovery_seconds_bucket{le="1e-09"} 0
wal_recovery_seconds_bucket{le="2e-09"} 0
wal_recovery_seconds_bucket{le="4e-09"} 0
wal_recovery_seconds_bucket{le="8e-09"} 0
wal_recovery_seconds_bucket{le="1.6e-08"} 0
wal_recovery_seconds_bucket{le="3.2e-08"} 0
wal_recovery_seconds_bucket{le="6.4e-08"} 0
wal_recovery_seconds_bucket{le="1.28e-07"} 0
wal_recovery_seconds_bucket{le="2.56e-07"} 0
wal_recovery_seconds_bucket{le="5.12e-07"} 0
wal_recovery_seconds_bucket{le="1.024e-06"} 0
wal_recovery_seconds_bucket{le="2.048e-06"} 0
wal_recovery_seconds_bucket{le="4.096e-06"} 0
wal_recovery_seconds_bucket{le="8.192e-06"} 0
wal_recovery_seconds_bucket{le="1.6384e-05"} 0
wal_recovery_seconds_bucket{le="3.2768e-05"} 0
wal_recovery_seconds_bucket{le="6.5536e-05"} 0
wal_recovery_seconds_bucket{le="0.000131072"} 0
wal_recovery_seconds_bucket{le="0.000262144"} 0
wal_recovery_seconds_bucket{le="0.000524288"} 0
wal_recovery_seconds_bucket{le="0.001048576"} 0
wal_recovery_seconds_bucket{le="0.002097152"} 0
wal_recovery_seconds_bucket{le="0.004194304"} 0
wal_recovery_seconds_bucket{le="0.008388608"} 0
wal_recovery_seconds_bucket{le="0.016777216"} 0
wal_recovery_seconds_bucket{le="0.033554432"} 1
wal_recovery_seconds_bucket{le="+Inf"} 1
wal_recovery_seconds_sum 0.02
wal_recovery_seconds_count 1
# TYPE rsm_group_decision_latency_seconds histogram
rsm_group_decision_latency_seconds_bucket{group="2",le="1e-09"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="2e-09"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="4e-09"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="8e-09"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="1.6e-08"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="3.2e-08"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="6.4e-08"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="1.28e-07"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="2.56e-07"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="5.12e-07"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="1.024e-06"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="2.048e-06"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="4.096e-06"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="8.192e-06"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="1.6384e-05"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="3.2768e-05"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="6.5536e-05"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="0.000131072"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="0.000262144"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="0.000524288"} 0
rsm_group_decision_latency_seconds_bucket{group="2",le="0.001048576"} 1
rsm_group_decision_latency_seconds_bucket{group="2",le="+Inf"} 1
rsm_group_decision_latency_seconds_sum{group="2"} 0.001
rsm_group_decision_latency_seconds_count{group="2"} 1
# HELP rsm_group_lease_held Processes holding each group's lease (0 or 1 per group when healthy).
# TYPE rsm_group_lease_held gauge
rsm_group_lease_held{group="2"} 1
# TYPE rsm_group_reads_local_total counter
# TYPE rsm_group_reads_fallback_total counter
rsm_group_reads_local_total{group="2"} 7
rsm_group_reads_fallback_total{group="2"} 0
`
