package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// fakeClock is a settable collector clock for deterministic tests.
type fakeClock struct{ t sim.Time }

func (f *fakeClock) now() sim.Time       { return f.t }
func (f *fakeClock) set(d time.Duration) { f.t = sim.At(d) }

func TestDowntimeStateMachine(t *testing.T) {
	clk := &fakeClock{}
	c := New(3, WithClock(clk.now))

	if _, ok := c.Leader(); ok {
		t.Fatal("leader agreed before any reports")
	}
	if _, ok := c.TimeSinceLastElection(); ok {
		t.Fatal("TimeSinceLastElection before any election")
	}

	// Initial election: processes converge on 0 one by one; the downtime
	// span runs from time zero to the last report.
	c.LeaderChanged(sim.At(10*time.Millisecond), 0, 0)
	c.LeaderChanged(sim.At(20*time.Millisecond), 1, 0)
	if _, ok := c.Leader(); ok {
		t.Fatal("agreement with one process still undecided")
	}
	c.LeaderChanged(sim.At(30*time.Millisecond), 2, 0)

	if l, ok := c.Leader(); !ok || l != 0 {
		t.Fatalf("leader = %v/%v, want 0/true", l, ok)
	}
	if c.Elections() != 1 {
		t.Fatalf("elections = %d, want 1", c.Elections())
	}
	dt := c.ElectionDowntime()
	if dt.Count != 1 || dt.Max != 30*time.Millisecond {
		t.Fatalf("downtime snapshot = count %d max %v, want 1/30ms", dt.Count, dt.Max)
	}
	clk.set(50 * time.Millisecond)
	if since, ok := c.TimeSinceLastElection(); !ok || since != 20*time.Millisecond {
		t.Fatalf("TimeSinceLastElection = %v/%v, want 20ms", since, ok)
	}

	// Re-election: agreement breaks at 100ms, reforms on 2 at 160ms.
	c.LeaderChanged(sim.At(100*time.Millisecond), 0, 2)
	if _, ok := c.Leader(); ok {
		t.Fatal("leader still agreed mid-election")
	}
	if _, ok := c.TimeSinceLastElection(); ok {
		t.Fatal("TimeSinceLastElection during dispute")
	}
	c.LeaderChanged(sim.At(120*time.Millisecond), 1, 2)
	c.LeaderChanged(sim.At(160*time.Millisecond), 2, 2)
	if l, ok := c.Leader(); !ok || l != 2 {
		t.Fatalf("leader = %v/%v, want 2/true", l, ok)
	}
	if c.Elections() != 2 {
		t.Fatalf("elections = %d, want 2", c.Elections())
	}
	dt = c.ElectionDowntime()
	if dt.Count != 2 || dt.Max != 60*time.Millisecond {
		t.Fatalf("downtime snapshot = count %d max %v, want 2/60ms", dt.Count, dt.Max)
	}
	if c.LeaderChanges() != 6 {
		t.Fatalf("leaderChanges = %d, want 6", c.LeaderChanges())
	}

	// Duplicate reports are ignored.
	c.LeaderChanged(sim.At(200*time.Millisecond), 0, 2)
	if c.LeaderChanges() != 6 || c.Elections() != 2 {
		t.Fatal("duplicate leader report changed state")
	}
}

func TestMarkDownLeaderOpensDowntime(t *testing.T) {
	clk := &fakeClock{}
	c := New(3, WithClock(clk.now))
	c.LeaderChanged(0, 0, 0)
	c.LeaderChanged(0, 1, 0)
	c.LeaderChanged(0, 2, 0)
	if l, ok := c.Leader(); !ok || l != 0 {
		t.Fatalf("leader = %v/%v, want 0/true", l, ok)
	}

	// Leader crashes at 1s: the downtime clock starts at the crash even
	// though the survivors' outputs have not moved yet.
	clk.set(time.Second)
	c.MarkDown(0)
	if _, ok := c.Leader(); ok {
		t.Fatal("crashed leader still counted as agreed")
	}

	// Survivors elect 1; the crashed process's frozen output (0) must not
	// block agreement.
	c.LeaderChanged(sim.At(1300*time.Millisecond), 1, 1)
	c.LeaderChanged(sim.At(1500*time.Millisecond), 2, 1)
	if l, ok := c.Leader(); !ok || l != 1 {
		t.Fatalf("leader = %v/%v, want 1/true", l, ok)
	}
	dt := c.ElectionDowntime()
	if dt.Count != 2 || dt.Max != 500*time.Millisecond {
		t.Fatalf("downtime = count %d max %v, want 2/500ms (crash → reform)", dt.Count, dt.Max)
	}

	// MarkDown is idempotent.
	c.MarkDown(0)
	if c.Elections() != 2 {
		t.Fatalf("elections = %d after duplicate MarkDown, want 2", c.Elections())
	}
}

func TestMarkDownNonLeaderKeepsAgreement(t *testing.T) {
	c := New(3, WithClock(func() sim.Time { return 0 }))
	for id := 0; id < 3; id++ {
		c.LeaderChanged(0, node.ID(id), 0)
	}
	c.MarkDown(2)
	if l, ok := c.Leader(); !ok || l != 0 {
		t.Fatalf("leader = %v/%v after non-leader crash, want 0/true", l, ok)
	}
	if c.Elections() != 1 {
		t.Fatalf("elections = %d, want 1", c.Elections())
	}
}

func TestHeartbeatJitter(t *testing.T) {
	c := New(2)
	hb := obs.Intern("LEADER")
	other := obs.Intern("RSM-ACCEPT")

	c.OnDeliver(sim.At(0), 0, 1, hb) // first delivery: no interval yet
	c.OnDeliver(sim.At(5*time.Millisecond), 0, 1, hb)
	c.OnDeliver(sim.At(11*time.Millisecond), 0, 1, hb)
	c.OnDeliver(sim.At(12*time.Millisecond), 0, 1, other) // not a heartbeat
	s := c.HeartbeatJitter()
	if s.Count != 2 {
		t.Fatalf("jitter count = %d, want 2", s.Count)
	}
	if s.Max != 6*time.Millisecond {
		t.Fatalf("jitter max = %v, want 6ms", s.Max)
	}

	// Per-link tracking: the 1→0 direction is independent.
	c.OnDeliver(sim.At(100*time.Millisecond), 1, 0, hb)
	if c.HeartbeatJitter().Count != 2 {
		t.Fatal("first delivery on a fresh link recorded an interval")
	}
}

func TestWithHeartbeatKindsReplacesDefaults(t *testing.T) {
	c := New(2, WithHeartbeatKinds("CUSTOM"))
	c.OnDeliver(sim.At(0), 0, 1, obs.Intern("LEADER"))
	c.OnDeliver(sim.At(time.Millisecond), 0, 1, obs.Intern("LEADER"))
	if c.HeartbeatJitter().Count != 0 {
		t.Fatal("default kind still tracked after WithHeartbeatKinds")
	}
	c.OnDeliver(sim.At(0), 0, 1, obs.Intern("CUSTOM"))
	c.OnDeliver(sim.At(time.Millisecond), 0, 1, obs.Intern("CUSTOM"))
	if c.HeartbeatJitter().Count != 1 {
		t.Fatal("custom kind not tracked")
	}
}

func TestQuiescenceGauges(t *testing.T) {
	clk := &fakeClock{}
	stats := metrics.NewMessageStats(3)
	c := New(3, WithClock(clk.now), WithStats(stats), WithQuiescenceWindow(100*time.Millisecond))

	leaderKind := obs.Intern("LEADER")
	accuse := obs.Intern("ACCUSE")

	// Pre-stabilization chatter: everyone sends.
	stats.OnSend(sim.At(time.Millisecond), 1, 0, leaderKind)
	stats.OnSend(sim.At(time.Millisecond), 2, 0, accuse)
	stats.OnSend(sim.At(2*time.Millisecond), 0, 1, leaderKind)
	stats.OnSend(sim.At(2*time.Millisecond), 0, 2, leaderKind)
	clk.set(3 * time.Millisecond)
	if got := c.ActiveLinks(); got != 4 {
		t.Fatalf("active links = %d, want 4", got)
	}

	// No leader yet: everyone is a non-leader.
	if got := c.NonLeaderSends(); got != 4 {
		t.Fatalf("non-leader sends = %d, want 4", got)
	}

	// Leader 0 agreed: only processes 1 and 2 count, and excluding
	// accusations discounts process 2's message.
	for id := 0; id < 3; id++ {
		c.LeaderChanged(sim.At(3*time.Millisecond), node.ID(id), 0)
	}
	if got := c.NonLeaderSends(); got != 2 {
		t.Fatalf("non-leader sends = %d, want 2", got)
	}
	if got := c.NonLeaderSends("ACCUSE"); got != 1 {
		t.Fatalf("non-leader sends excl accuse = %d, want 1", got)
	}

	// Steady state: only the leader's links stay active once the window
	// slides past the early chatter.
	stats.OnSend(sim.At(500*time.Millisecond), 0, 1, leaderKind)
	stats.OnSend(sim.At(500*time.Millisecond), 0, 2, leaderKind)
	clk.set(550 * time.Millisecond)
	if got := c.ActiveLinks(); got != 2 {
		t.Fatalf("active links = %d in steady state, want n-1 = 2", got)
	}
	if got := c.NonLeaderSends("ACCUSE"); got != 1 {
		t.Fatal("non-leader sends moved in steady state")
	}
}

func TestCollectorWithoutStats(t *testing.T) {
	c := New(2)
	if c.ActiveLinks() != 0 || c.NonLeaderSends() != 0 {
		t.Fatal("gauges without stats should read zero")
	}
	if c.Stats() != nil {
		t.Fatal("Stats() should be nil without WithStats")
	}
}

func TestDecided(t *testing.T) {
	c := New(3)
	c.Decided(consensus.Decision{By: 1, Elapsed: 4 * time.Millisecond})
	c.Decided(consensus.Decision{By: 2}) // follower learn: latency unknown
	if c.Decides() != 2 {
		t.Fatalf("decides = %d, want 2", c.Decides())
	}
	s := c.DecisionLatency()
	if s.Count != 1 || s.Max != 4*time.Millisecond {
		t.Fatalf("decision latency = count %d max %v, want 1/4ms", s.Count, s.Max)
	}
}

func TestDecidedPerCommandLatency(t *testing.T) {
	// A batched instance fans out one Decision per command, each with its
	// own enqueue-to-apply latency; the collector must count and bucket
	// every command, not just the instance.
	c := New(3)
	rec := consensus.NewRecorder()
	c.WatchRecorder(0, rec)
	for cmd, lat := range []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond} {
		rec.Record(consensus.Decision{Instance: 7, Cmd: cmd, Value: "v", By: 0, Elapsed: lat})
	}
	rec.Record(consensus.Decision{Instance: 7, Cmd: 1, Value: "dup", By: 0, Elapsed: time.Hour}) // duplicate slot: ignored
	if c.Decides() != 3 {
		t.Fatalf("decides = %d, want one per command", c.Decides())
	}
	s := c.DecisionLatency()
	if s.Count != 3 || s.Max < 9*time.Millisecond || s.Max >= 18*time.Millisecond {
		t.Fatalf("decision latency = count %d max %v, want 3 commands / ~9ms max", s.Count, s.Max)
	}
}

// TestCollectorRaceStress exercises every reader against every writer
// concurrently; its value is under -race (see make test-race / CI).
func TestCollectorRaceStress(t *testing.T) {
	const n = 4
	stats := metrics.NewMessageStats(n)
	c := New(n, WithStats(stats))
	hb := obs.Intern("LEADER")

	const iters = 3000
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	worker(func(i int) {
		from, to := i%n, (i+1)%n
		ts := sim.At(time.Duration(i) * time.Microsecond)
		stats.OnSend(ts, from, to, hb)
		c.OnDeliver(ts, from, to, hb)
	})
	worker(func(i int) {
		c.LeaderChanged(sim.At(time.Duration(i)*time.Microsecond), node.ID(i%n), node.ID(i%2))
	})
	worker(func(i int) {
		c.Decided(consensus.Decision{By: node.ID(i % n), Elapsed: time.Duration(i%100) * time.Microsecond})
	})
	worker(func(i int) {
		if i%100 != 0 { // readers are heavier; sample
			return
		}
		c.WritePrometheus(io.Discard)
		_ = c.Health()
		_ = c.Dump()
		_, _ = c.Leader()
		_ = c.ActiveLinks()
		_ = c.NonLeaderSends("ACCUSE")
		_ = c.HeartbeatJitter()
	})
	wg.Wait()

	if c.Decides() != iters {
		t.Fatalf("decides = %d, want %d", c.Decides(), iters)
	}
	if c.HeartbeatJitter().Count == 0 {
		t.Fatal("no heartbeat intervals recorded under stress")
	}
}
