// Package telemetry is the live operational surface of the repository: it
// turns the raw event streams the rest of the system already produces —
// obs.Sink message events, detector.History leader transitions,
// consensus.Recorder decisions, metrics.MessageStats counters — into
// distributions and gauges that can be scraped off a running cluster.
//
// The package answers the two questions the reproduced paper makes
// headline claims about, but that per-run snapshots cannot answer on a
// live system:
//
//   - How long do elections take? (downtime distribution: leader-change
//     to next cluster-wide stable leader)
//   - Is the cluster actually quiescent? (after stabilization, exactly
//     n−1 directed links carry traffic and non-leaders stop sending)
//
// Histogram is the recording primitive: fixed arrays of atomics, sharded
// per process, zero allocations on the record path, mergeable immutable
// snapshots. Collector wires histograms to the event sources. Serve
// exposes everything over HTTP as Prometheus text plus pprof.
package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two duration buckets. Bucket b
// counts durations d with bits.Len64(uint64(d)) == b, i.e. the half-open
// range [2^(b-1), 2^b) nanoseconds; bucket 0 counts zero (and negative,
// clamped) durations. 64 buckets cover every representable duration, so
// recording never range-checks.
const HistBuckets = 65

// histShard is one recorder's slice of a histogram. Shards are separately
// heap-allocated so concurrent recorders never share cache lines.
type histShard struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds, monotone via CAS
}

// Histogram is a lock-free duration histogram with power-of-two buckets.
// The record path is wait-free apart from the bounded max-CAS loop and
// performs no allocation; recording and snapshotting may proceed
// concurrently (a snapshot taken mid-record is approximate by at most the
// in-flight records).
type Histogram struct {
	name   string
	shards []*histShard
}

// NewHistogram returns a histogram with one shard per expected concurrent
// recorder (typically the process count). shards < 1 is treated as 1.
// name labels the histogram in exports.
func NewHistogram(name string, shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{name: name, shards: make([]*histShard, shards)}
	for i := range h.shards {
		h.shards[i] = &histShard{}
	}
	return h
}

// Name returns the histogram's export label.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a duration to its power-of-two bucket.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// Record adds one observation to the given shard. Callers pick a shard
// that is theirs alone in the common case (their process id, modulo the
// shard count); sharing a shard is safe, merely contended.
func (h *Histogram) Record(shard int, d time.Duration) {
	sh := h.shards[shard%len(h.shards)]
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	sh.buckets[bucketOf(d)].Add(1)
	sh.count.Add(1)
	sh.sum.Add(ns)
	for {
		cur := sh.max.Load()
		if ns <= cur || sh.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is an immutable merged view of a histogram at one instant.
type HistSnapshot struct {
	Name    string
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [HistBuckets]uint64
}

// Snapshot merges all shards into an immutable snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{Name: h.name}
	for _, sh := range h.shards {
		for b := range sh.buckets {
			snap.Buckets[b] += sh.buckets[b].Load()
		}
		snap.Count += sh.count.Load()
		snap.Sum += time.Duration(sh.sum.Load())
		if m := time.Duration(sh.max.Load()); m > snap.Max {
			snap.Max = m
		}
	}
	return snap
}

// Merge combines two snapshots (e.g. the same histogram from several
// clusters) into one.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	for b := range o.Buckets {
		out.Buckets[b] += o.Buckets[b]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// bucketUpper returns the inclusive upper bound of bucket b in
// nanoseconds.
func bucketUpper(b int) time.Duration {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return time.Duration(int64(^uint64(0) >> 1)) // saturate
	}
	return time.Duration((uint64(1) << uint(b)) - 1)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// recorded distribution: the upper edge of the bucket containing it.
// Power-of-two buckets make this exact to within a factor of two, which
// is the resolution the telemetry layer promises. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range s.Buckets {
		seen += c
		if seen >= rank {
			u := bucketUpper(b)
			if u > s.Max {
				u = s.Max // the top bucket can't exceed the recorded max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded durations, 0 when
// empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// String formats the snapshot's headline stats.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("%s: count=%d p50=%v p90=%v p99=%v max=%v",
		s.Name, s.Count, s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max)
}
