package telemetry

import (
	"encoding/json"
	"os"
	"time"
)

// HistJSON is one histogram snapshot in the offline-diffable dump format.
type HistJSON struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MaxNS   int64    `json:"max_ns"`
	P50NS   int64    `json:"p50_ns"`
	P90NS   int64    `json:"p90_ns"`
	P99NS   int64    `json:"p99_ns"`
	Buckets []uint64 `json:"buckets"` // power-of-two, trailing zeros trimmed
}

func histJSON(s HistSnapshot) HistJSON {
	top := 0
	for b, c := range s.Buckets {
		if c > 0 {
			top = b + 1
		}
	}
	return HistJSON{
		Count:   s.Count,
		SumNS:   int64(s.Sum),
		MaxNS:   int64(s.Max),
		P50NS:   int64(s.Quantile(0.50)),
		P90NS:   int64(s.Quantile(0.90)),
		P99NS:   int64(s.Quantile(0.99)),
		Buckets: append([]uint64(nil), s.Buckets[:top]...),
	}
}

// Dump is the merged metrics+histogram snapshot cmd/chaossoak and
// cmd/wireload write with -snapshot-json, shaped for diffing against the
// BENCH_*.json baselines: stable field order, counts and nanoseconds only
// (no wall-clock timestamps).
type Dump struct {
	N              int                 `json:"n"`
	Sent           uint64              `json:"sent"`
	Delivered      uint64              `json:"delivered"`
	Dropped        uint64              `json:"dropped"`
	WireBytes      uint64              `json:"wire_bytes"`
	SentByKind     map[string]uint64   `json:"sent_by_kind"`
	SentByProcess  []uint64            `json:"sent_by_process"`
	Leader         int                 `json:"leader"`
	Elections      uint64              `json:"elections"`
	LeaderChanges  uint64              `json:"leader_changes"`
	Decides        uint64              `json:"decides"`
	ActiveLinks    int                 `json:"active_links"`
	NonLeaderSends uint64              `json:"non_leader_sends"`
	WindowNS       int64               `json:"quiescence_window_ns"`
	LeaseHolders   int                 `json:"lease_holders"`
	LocalReads     uint64              `json:"reads_local"`
	FallbackReads  uint64              `json:"reads_fallback"`
	Histograms     map[string]HistJSON `json:"histograms"`
}

// Dump assembles the current snapshot.
func (c *Collector) Dump() Dump {
	d := Dump{
		N:              c.n,
		Leader:         -1,
		Elections:      c.Elections(),
		LeaderChanges:  c.LeaderChanges(),
		Decides:        c.Decides(),
		ActiveLinks:    c.ActiveLinks(),
		NonLeaderSends: c.NonLeaderSends(),
		WindowNS:       int64(c.win / time.Nanosecond),
		SentByKind:     map[string]uint64{},
		Histograms: map[string]HistJSON{
			"election_downtime":      histJSON(c.ElectionDowntime()),
			"decision_latency":       histJSON(c.DecisionLatency()),
			"heartbeat_interarrival": histJSON(c.HeartbeatJitter()),
			// Count-unit: "ns" fields hold frame/byte counts per flush.
			"flush_frames": histJSON(c.FlushFrames()),
			"flush_bytes":  histJSON(c.FlushBytes()),
			"wal_fsync":    histJSON(c.FsyncLatency()),
			// Count-unit: framed bytes per appended record.
			"wal_append_bytes": histJSON(c.WALAppendBytes()),
			"wal_recovery":     histJSON(c.RecoveryTime()),
		},
	}
	d.LeaseHolders, d.LocalReads, d.FallbackReads = c.leaseSnapshot()
	if leader, ok := c.Leader(); ok {
		d.Leader = int(leader)
	}
	if st := c.stats; st != nil {
		d.Sent = st.TotalSent()
		d.Delivered = st.Delivered()
		d.Dropped = st.Dropped()
		d.WireBytes = st.WireBytes()
		for _, kind := range st.Kinds() {
			d.SentByKind[kind] = st.KindCount(kind)
		}
		d.SentByProcess = make([]uint64, c.n)
		for p := 0; p < c.n; p++ {
			d.SentByProcess[p] = st.SentBy(p)
		}
	}
	return d
}

// WriteJSON writes the snapshot to path, indented, for offline diffing.
func (c *Collector) WriteJSON(path string) error {
	data, err := json.MarshalIndent(c.Dump(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
