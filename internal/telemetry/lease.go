package telemetry

import (
	"time"

	"repro/internal/node"
)

// LeaseProbe reports one process's read-path state: whether it currently
// holds the leader lease, and its monotone local/fallback read counters.
// Probes are polled at scrape time, never on a hot path, so an
// implementation backed by atomics (rsm.Node.LeaseHeld, LocalReads,
// FallbackReads) is plenty.
type LeaseProbe func() (held bool, local, fallback uint64)

// WatchLease registers a process's lease probe. Call during setup, before
// Serve.
func (c *Collector) WatchLease(probe LeaseProbe) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leaseProbes = append(c.leaseProbes, probe)
}

// leaseSnapshot polls every registered probe once.
func (c *Collector) leaseSnapshot() (held int, local, fallback uint64) {
	c.mu.Lock()
	probes := c.leaseProbes
	c.mu.Unlock()
	for _, p := range probes {
		h, l, f := p()
		if h {
			held++
		}
		local += l
		fallback += f
	}
	return held, local, fallback
}

// LeaseHolders returns how many watched processes currently believe they
// hold the leader lease. In a healthy cluster this reads 0 or 1; a
// sustained 2+ would falsify the lease safety argument.
func (c *Collector) LeaseHolders() int {
	held, _, _ := c.leaseSnapshot()
	return held
}

// LocalReads returns the total reads served locally under a lease, with
// zero consensus messages, across watched processes.
func (c *Collector) LocalReads() uint64 {
	_, local, _ := c.leaseSnapshot()
	return local
}

// FallbackReads returns the total reads that took the phase-2 no-op
// barrier across watched processes.
func (c *Collector) FallbackReads() uint64 {
	_, _, fallback := c.leaseSnapshot()
	return fallback
}

// RecordFlush feeds one successful vectored write into the flush-size
// histograms; its signature matches transport.Config.OnFlush so it wires
// directly. Sharded by sending process; safe for concurrent use from
// every sender goroutine.
func (c *Collector) RecordFlush(from, to node.ID, frames, bytes int) {
	// The histograms are duration-typed but count-unit here: one "ns" per
	// frame (or byte). Power-of-two buckets make that exact, and the
	// count-unit prom/dump exports never rescale to seconds.
	c.flushFrames.Record(int(from), time.Duration(frames))
	c.flushBytes.Record(int(from), time.Duration(bytes))
}

// FlushFrames returns the merged frames-per-flush snapshot (count-unit:
// durations are frame counts, not nanoseconds).
func (c *Collector) FlushFrames() HistSnapshot { return c.flushFrames.Snapshot() }

// FlushBytes returns the merged bytes-per-flush snapshot (count-unit).
func (c *Collector) FlushBytes() HistSnapshot { return c.flushBytes.Snapshot() }
