package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

func TestDurableHooksFeedHistograms(t *testing.T) {
	c := New(3)
	onAppend, onFsync, onRecover := c.DurableHooks(1)

	onAppend(17)
	onAppend(40)
	onFsync(3 * time.Millisecond)
	onRecover(8 * time.Millisecond)
	c.RecordWALAppend(2, 9) // another process shares the merged view

	if ap := c.WALAppendBytes(); ap.Count != 3 || ap.Sum != time.Duration(17+40+9) {
		t.Fatalf("append snapshot = count %d sum %v", ap.Count, ap.Sum)
	}
	if fs := c.FsyncLatency(); fs.Count != 1 || fs.Max != 3*time.Millisecond {
		t.Fatalf("fsync snapshot = count %d max %v", fs.Count, fs.Max)
	}
	if rc := c.RecoveryTime(); rc.Count != 1 || rc.Max != 8*time.Millisecond {
		t.Fatalf("recovery snapshot = count %d max %v", rc.Count, rc.Max)
	}

	var sb strings.Builder
	c.WritePrometheus(&sb)
	for _, metric := range []string{"wal_fsync_seconds", "wal_append_bytes", "wal_recovery_seconds"} {
		if !strings.Contains(sb.String(), metric) {
			t.Fatalf("/metrics output missing %s", metric)
		}
	}
	d := c.Dump()
	for _, h := range []string{"wal_fsync", "wal_append_bytes", "wal_recovery"} {
		if _, ok := d.Histograms[h]; !ok {
			t.Fatalf("dump missing histogram %s", h)
		}
	}
}

// TestMarkUpReopensAgreement checks the rejoin half of the downtime state
// machine: a restarted process re-enters agreement tracking with no
// leader output, so cluster-wide agreement is withheld (and the downtime
// span runs) until the rejoined process converges.
func TestMarkUpReopensAgreement(t *testing.T) {
	clk := &fakeClock{}
	c := New(3, WithClock(clk.now))
	for p := 0; p < 3; p++ {
		c.LeaderChanged(sim.At(10*time.Millisecond), node.ID(p), 0)
	}
	if l, ok := c.Leader(); !ok || l != 0 {
		t.Fatalf("leader = %v/%v, want 0/true", l, ok)
	}

	clk.set(20 * time.Millisecond)
	c.MarkDown(2)
	if _, ok := c.Leader(); !ok {
		t.Fatal("survivors' agreement should hold with p2 marked down")
	}

	clk.set(30 * time.Millisecond)
	c.MarkUp(2)
	if _, ok := c.Leader(); ok {
		t.Fatal("agreement held while rejoined p2 has no leader output")
	}
	c.MarkUp(2) // idempotent: a second MarkUp is a no-op
	if _, ok := c.Leader(); ok {
		t.Fatal("agreement held after duplicate MarkUp")
	}

	c.LeaderChanged(sim.At(45*time.Millisecond), 2, 0)
	if l, ok := c.Leader(); !ok || l != 0 {
		t.Fatalf("leader after rejoin = %v/%v, want 0/true", l, ok)
	}
	// The rejoin-to-agreement span (30ms → 45ms) lands in the downtime
	// histogram alongside the initial 10ms election.
	if dt := c.ElectionDowntime(); dt.Count != 2 || dt.Max != 15*time.Millisecond {
		t.Fatalf("downtime snapshot = count %d max %v, want 2/15ms", dt.Count, dt.Max)
	}
}
