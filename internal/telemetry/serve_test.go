package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	clk := &fakeClock{}
	stats := metrics.NewMessageStats(3)
	c := New(3, WithClock(clk.now), WithStats(stats))

	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// No agreement yet: /healthz must refuse.
	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while disputed: status %d, want 503", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz body not JSON: %v\n%s", err, body)
	}
	if h.Agreed || h.Leader != -1 {
		t.Fatalf("disputed health = %+v", h)
	}

	// Feed some state and scrape.
	stats.OnSend(sim.At(time.Millisecond), 0, 1, obs.Intern("LEADER"))
	for id := 0; id < 3; id++ {
		c.LeaderChanged(sim.At(2*time.Millisecond), node.ID(id), 0)
	}
	clk.set(10 * time.Millisecond)

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz after agreement: status %d\n%s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Agreed || h.Leader != 0 || h.Epoch != 1 {
		t.Fatalf("health = %+v, want agreed leader 0 epoch 1", h)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"omega_sent_total 1",
		"omega_active_links 1",
		"omega_leader 0",
		"omega_elections_total 1",
		"omega_non_leader_sends_total 0",
		"omega_election_downtime_seconds_count 1",
		"omega_heartbeat_interarrival_seconds_bucket",
		"omega_decision_latency_seconds_sum",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof is mounted.
	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline: status %d, %d bytes", code, len(body))
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", New(2)); err == nil {
		t.Fatal("Serve on a bogus address should fail")
	}
}
