package telemetry

import (
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("t", 2)
	h.Record(0, 0)
	h.Record(0, 1)              // bucket 1: [1,2)
	h.Record(1, 3)              // bucket 2: [2,4)
	h.Record(1, 1024)           // bucket 11: [1024, 2048)
	h.Record(3, 1025)           // shard 3%2=1
	h.Record(0, -5*time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 1 || s.Buckets[11] != 2 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets[:12])
	}
	if s.Max != 1025 {
		t.Fatalf("max = %v, want 1025ns", s.Max)
	}
	if s.Sum != 0+1+3+1024+1025 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("t", 1)
	for i := 0; i < 90; i++ {
		h.Record(0, time.Millisecond) // bucket 20 (2^20ns ≈ 1.05ms upper)
	}
	for i := 0; i < 10; i++ {
		h.Record(0, time.Second)
	}
	s := h.Snapshot()
	p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
	// Power-of-two buckets: quantiles are exact to within a factor of two.
	if p50 < time.Millisecond/2 || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 < time.Second/2 || p99 > 2*time.Second {
		t.Fatalf("p99 = %v, want ~1s", p99)
	}
	if got := s.Quantile(1.0); got != s.Max {
		t.Fatalf("p100 = %v, want max %v", got, s.Max)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a", 1), NewHistogram("b", 1)
	a.Record(0, time.Millisecond)
	b.Record(0, time.Second)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 2 || m.Max != time.Second {
		t.Fatalf("merge: count=%d max=%v", m.Count, m.Max)
	}
	if m.Sum != time.Second+time.Millisecond {
		t.Fatalf("merge sum = %v", m.Sum)
	}
}

// TestHistogramRecordZeroAlloc is the allocation contract the telemetry
// layer promises: recording costs no heap allocation, ever.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewHistogram("t", 4)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(2, 137*time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram("bench", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(0, time.Duration(i))
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram("bench", 8)
	b.ReportAllocs()
	var shard int64
	b.RunParallel(func(pb *testing.PB) {
		s := int(shard) % 8
		shard++
		d := time.Microsecond
		for pb.Next() {
			h.Record(s, d)
			d += 17
		}
	})
}
