package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: who leads, how stable the reign is, and
// whether the cluster is quiescent, in one glance.
type Health struct {
	// Leader is the cluster-wide agreed leader id, -1 while disputed.
	Leader int `json:"leader"`
	// Agreed reports whether every watched process outputs the same leader.
	Agreed bool `json:"agreed"`
	// Epoch counts completed cluster-wide elections — a monotone reign
	// counter (it is not the algorithm's internal accusation count, which
	// lives on the node loops and is not safely readable from outside).
	Epoch uint64 `json:"epoch"`
	// StableForSeconds is how long the current agreement has held
	// (absent while disputed).
	StableForSeconds float64 `json:"stable_for_seconds,omitempty"`
	// ActiveLinks is the directed links active within the quiescence
	// window; n-1 once the paper's steady state is reached.
	ActiveLinks int `json:"active_links"`
	// NonLeaderSends totals messages sent by non-leaders; flat in steady
	// state.
	NonLeaderSends uint64 `json:"non_leader_sends"`
	// Decides counts consensus decisions observed.
	Decides uint64 `json:"decides"`
}

// Health assembles the current health view.
func (c *Collector) Health() Health {
	leader, agreed := c.Leader()
	h := Health{
		Leader:         -1,
		Agreed:         agreed,
		Epoch:          c.Elections(),
		ActiveLinks:    c.ActiveLinks(),
		NonLeaderSends: c.NonLeaderSends(),
		Decides:        c.Decides(),
	}
	if agreed {
		h.Leader = int(leader)
		if since, ok := c.TimeSinceLastElection(); ok {
			h.StableForSeconds = since.Seconds()
		}
	}
	return h
}

// Server is a running telemetry endpoint. Close releases the listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOption customizes the endpoint Serve builds.
type ServeOption func(*serveOptions)

type serveOptions struct {
	traceSource func(io.Writer) error
}

// WithTraceSource adds a /trace route that streams a live span-dump
// snapshot (the tracing flight recorder's WriteJSON) on every GET. A nil
// source leaves the route unregistered.
func WithTraceSource(fn func(io.Writer) error) ServeOption {
	return func(o *serveOptions) { o.traceSource = fn }
}

// Serve starts an HTTP endpoint on addr (e.g. ":8080" or "127.0.0.1:0")
// exposing:
//
//	/metrics       Prometheus text exposition of the collector
//	/healthz       JSON leader/epoch/quiescence summary (503 while no
//	               cluster-wide leader agreement holds)
//	/trace         JSON span-dump snapshot (with WithTraceSource)
//	/debug/pprof/  the standard net/http/pprof surface
//
// The server runs until Close. Pass the returned Server's Addr to curl
// when addr used port 0.
func Serve(addr string, c *Collector, opts ...ServeOption) (*Server, error) {
	var o serveOptions
	for _, opt := range opts {
		opt(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if o.traceSource != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := o.traceSource(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := c.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Agreed {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
