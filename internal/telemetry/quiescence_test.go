package telemetry_test

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestQuiescenceEndToEnd boots a real 5-node in-memory cluster running the
// paper's core detector and asserts, through the telemetry gauges alone,
// that the steady state the paper promises is reached and holds: exactly
// n-1 directed links active, and the non-leader send counter (net of
// accusation traffic) flat over an observation window. Run under -race
// this doubles as a concurrency test of the whole observer pipeline.
func TestQuiescenceEndToEnd(t *testing.T) {
	const (
		n      = 5
		eta    = 4 * time.Millisecond
		window = 300 * time.Millisecond
	)
	tel := telemetry.New(n,
		telemetry.WithQuiescenceWindow(window),
		telemetry.WithHeartbeatKinds(core.KindLeader))

	// A generous timeout keeps goroutine-scheduling jitter on loaded CI
	// machines from triggering spurious accusations mid-test.
	dets := make([]*core.Detector, n)
	autos := make([]node.Automaton, n)
	for i := range autos {
		dets[i] = core.New(core.WithEta(eta), core.WithBaseTimeout(100*time.Millisecond))
		autos[i] = dets[i]
	}
	c, err := transport.NewCluster(transport.Config{N: n, Seed: 42, Quiet: true, Observer: tel}, autos)
	if err != nil {
		t.Fatal(err)
	}
	tel.AttachStats(c.Stats())
	for i, d := range dets {
		tel.WatchOmega(node.ID(i), d.History())
	}
	c.Start()
	defer c.Stop()

	// Wait for quiescence: cluster-wide agreement AND the sliding window
	// fully past the election chatter, so only the leader's n-1 links show.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := tel.Leader(); ok && tel.ActiveLinks() == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not quiesce within 10s: leader=%v links=%d",
				mustLeader(tel), tel.ActiveLinks())
		}
		time.Sleep(10 * time.Millisecond)
	}
	leader, _ := tel.Leader()

	// Communication efficiency: over a full observation window, the
	// non-leader counter (net of accusations/rebuffs) must not move.
	base := tel.NonLeaderSends(core.KindAccuse, core.KindRebuff)
	time.Sleep(window)
	if got := tel.NonLeaderSends(core.KindAccuse, core.KindRebuff); got != base {
		t.Errorf("non-leader sends moved %d -> %d during steady state", base, got)
	}
	if got := tel.ActiveLinks(); got != n-1 {
		t.Errorf("active links = %d after hold window, want %d", got, n-1)
	}

	// Sanity on the rest of the surface while the cluster is live. Re-read
	// the leader in case an (unexpected) re-election happened above.
	leader, _ = tel.Leader()
	h := tel.Health()
	if !h.Agreed || h.Leader != int(leader) || h.Epoch == 0 {
		t.Errorf("health = %+v, want agreement on %d", h, leader)
	}
	if tel.ElectionDowntime().Count == 0 {
		t.Error("no election downtime recorded for the initial election")
	}
	hb := tel.HeartbeatJitter()
	if hb.Count == 0 {
		t.Error("no heartbeat inter-arrivals recorded")
	}
	// Inter-arrival p50 should be on the order of η — generous bound to
	// stay robust under -race and loaded CI machines.
	if p50 := hb.Quantile(0.5); p50 < eta/4 || p50 > 50*eta {
		t.Errorf("heartbeat inter-arrival p50 = %v, want within [η/4, 50η] of η=%v", p50, eta)
	}
}

// mustLeader reads the agreed leader for error messages, -1 when disputed.
func mustLeader(tel *telemetry.Collector) int {
	if l, ok := tel.Leader(); ok {
		return int(l)
	}
	return -1
}

// TestQuiescenceLiveTCPMetricsEndpoint is the acceptance check end to end
// on real sockets: boot a 5-node TCP cluster, serve the telemetry
// endpoint, and scrape /metrics over HTTP until it reports
// omega_active_links = n-1 with omega_non_leader_sends_total flat —
// the steady state as an operator would actually observe it.
func TestQuiescenceLiveTCPMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP e2e; skipped in -short")
	}
	const (
		n      = 5
		window = 300 * time.Millisecond
	)
	tel := telemetry.New(n,
		telemetry.WithQuiescenceWindow(window),
		telemetry.WithHeartbeatKinds(core.KindLeader))
	dets := make([]*core.Detector, n)
	autos := make([]node.Automaton, n)
	for i := range autos {
		dets[i] = core.New(core.WithEta(4*time.Millisecond), core.WithBaseTimeout(100*time.Millisecond))
		autos[i] = dets[i]
	}
	c, err := transport.NewTCPCluster(transport.Config{N: n, Seed: 7, Quiet: true, Observer: tel}, autos)
	if err != nil {
		t.Fatal(err)
	}
	tel.AttachStats(c.Stats())
	for i, d := range dets {
		tel.WatchOmega(node.ID(i), d.History())
	}
	c.Start()
	defer c.Stop()

	srv, err := telemetry.Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	scrape := func(metric string) (float64, bool) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if v, ok := strings.CutPrefix(sc.Text(), metric+" "); ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("metric %s = %q: %v", metric, v, err)
				}
				return f, true
			}
		}
		return 0, false
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if links, ok := scrape("omega_active_links"); ok && links == n-1 {
			break
		}
		if time.Now().After(deadline) {
			links, _ := scrape("omega_active_links")
			t.Fatalf("scraped omega_active_links = %v, never reached n-1 = %d", links, n-1)
		}
		time.Sleep(20 * time.Millisecond)
	}

	before, ok := scrape("omega_non_leader_sends_total")
	if !ok {
		t.Fatal("omega_non_leader_sends_total missing from /metrics")
	}
	time.Sleep(window)
	after, _ := scrape("omega_non_leader_sends_total")
	if after != before {
		t.Errorf("omega_non_leader_sends_total moved %v -> %v during steady state", before, after)
	}
	if links, _ := scrape("omega_active_links"); links != n-1 {
		t.Errorf("omega_active_links = %v after hold window, want %d", links, n-1)
	}
	if leader, ok := scrape("omega_leader"); !ok || leader < 0 {
		t.Errorf("omega_leader = %v, want an agreed id", leader)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz on a stabilized cluster: status %d", resp.StatusCode)
	}
}
