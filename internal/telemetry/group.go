package telemetry

import (
	"sort"

	"repro/internal/consensus"
	"repro/internal/node"
)

// groupSeries holds one consensus group's telemetry in a sharded cluster
// (internal/consensus/group): its own decision-latency histogram and its
// own lease probes, exported with a group label so per-shard health —
// which shard is slow, which shard lost its lease — stays visible after
// aggregation would have hidden it.
type groupSeries struct {
	g        int
	decision *Histogram
	probes   []LeaseProbe
}

// groupSeriesFor returns (creating on first use) group g's series.
func (c *Collector) groupSeriesFor(g int) *groupSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.groups == nil {
		c.groups = make(map[int]*groupSeries)
	}
	gs, ok := c.groups[g]
	if !ok {
		gs = &groupSeries{g: g, decision: NewHistogram("group_decision_latency", c.n)}
		c.groups[g] = gs
	}
	return gs
}

// WatchGroupRecorder subscribes the collector to one group's decision
// stream on process id: decisions count toward the cluster-wide totals
// exactly as WatchRecorder's do, and additionally feed the group's own
// latency histogram. Call during setup, before the engine starts. The
// per-decision path touches no locks — the group's histogram is captured
// in the closure.
func (c *Collector) WatchGroupRecorder(g int, id node.ID, r *consensus.Recorder) {
	gs := c.groupSeriesFor(g)
	r.SetNotify(func(d consensus.Decision) {
		c.Decided(d)
		if d.Elapsed > 0 {
			gs.decision.Record(int(d.By), d.Elapsed)
		}
	})
}

// WatchGroupLease registers one group's read-path probe on one process;
// the per-group lease gauges aggregate over processes within the group.
// Call during setup, before Serve.
func (c *Collector) WatchGroupLease(g int, probe LeaseProbe) {
	gs := c.groupSeriesFor(g)
	c.mu.Lock()
	gs.probes = append(gs.probes, probe)
	c.mu.Unlock()
}

// GroupIDs returns the watched group ids in ascending order (empty in
// unsharded clusters).
func (c *Collector) GroupIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.groups))
	for g := range c.groups {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	return ids
}

// GroupDecisionLatency returns group g's merged decision-latency snapshot.
func (c *Collector) GroupDecisionLatency(g int) HistSnapshot {
	c.mu.Lock()
	gs, ok := c.groups[g]
	c.mu.Unlock()
	if !ok {
		return HistSnapshot{}
	}
	return gs.decision.Snapshot()
}

// GroupLeaseHolders returns how many of group g's watched processes
// currently claim the group's lease — 0 or 1 when healthy, per group.
func (c *Collector) GroupLeaseHolders(g int) int {
	held, _, _ := c.groupLeaseSnapshot(g)
	return held
}

// groupLeaseSnapshot polls group g's probes once.
func (c *Collector) groupLeaseSnapshot(g int) (held int, local, fallback uint64) {
	c.mu.Lock()
	gs, ok := c.groups[g]
	var probes []LeaseProbe
	if ok {
		probes = gs.probes
	}
	c.mu.Unlock()
	for _, p := range probes {
		h, l, f := p()
		if h {
			held++
		}
		local += l
		fallback += f
	}
	return held, local, fallback
}
