package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
)

// TestGroupSeries checks per-group decision histograms and lease gauges
// land in their own labeled series and still roll up into the cluster-wide
// totals.
func TestGroupSeries(t *testing.T) {
	c := New(3)
	recs := []*consensus.Recorder{consensus.NewRecorder(), consensus.NewRecorder()}
	for g, r := range recs {
		c.WatchGroupRecorder(g, 0, r)
	}
	c.WatchGroupLease(0, func() (bool, uint64, uint64) { return true, 7, 1 })
	c.WatchGroupLease(1, func() (bool, uint64, uint64) { return false, 2, 0 })

	recs[0].Record(consensus.Decision{Instance: 0, Value: "a", By: 0, Elapsed: time.Millisecond})
	recs[1].Record(consensus.Decision{Instance: 0, Value: "b", By: 1, Elapsed: 2 * time.Millisecond})
	recs[1].Record(consensus.Decision{Instance: 1, Value: "c", By: 1, Elapsed: 3 * time.Millisecond})

	if got := c.Decides(); got != 3 {
		t.Fatalf("cluster-wide decides = %d, want 3", got)
	}
	if ids := c.GroupIDs(); len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("GroupIDs = %v", ids)
	}
	if s := c.GroupDecisionLatency(0); s.Count != 1 {
		t.Fatalf("group 0 decision count = %d, want 1", s.Count)
	}
	if s := c.GroupDecisionLatency(1); s.Count != 2 {
		t.Fatalf("group 1 decision count = %d, want 2", s.Count)
	}
	if s := c.GroupDecisionLatency(9); s.Count != 0 {
		t.Fatalf("unknown group decision count = %d, want 0", s.Count)
	}
	if got := c.GroupLeaseHolders(0); got != 1 {
		t.Fatalf("group 0 lease holders = %d, want 1", got)
	}
	if got := c.GroupLeaseHolders(1); got != 0 {
		t.Fatalf("group 1 lease holders = %d, want 0", got)
	}

	var b strings.Builder
	c.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`rsm_group_decision_latency_seconds_count{group="0"} 1`,
		`rsm_group_decision_latency_seconds_count{group="1"} 2`,
		`rsm_group_lease_held{group="0"} 1`,
		`rsm_group_lease_held{group="1"} 0`,
		`rsm_group_reads_local_total{group="0"} 7`,
		`rsm_group_reads_fallback_total{group="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestGroupSeriesAbsentWhenUnsharded: an unsharded collector must not emit
// group-labeled families at all.
func TestGroupSeriesAbsentWhenUnsharded(t *testing.T) {
	c := New(3)
	var b strings.Builder
	c.WritePrometheus(&b)
	if strings.Contains(b.String(), "rsm_group_") {
		t.Fatal("unsharded collector emitted group series")
	}
}
