package telemetry

import (
	"strings"
	"testing"
)

func TestWatchLeaseGauges(t *testing.T) {
	c := New(3)
	held := []bool{false, true, false}
	local := []uint64{0, 120, 0}
	fallback := []uint64{2, 3, 1}
	for i := 0; i < 3; i++ {
		i := i
		c.WatchLease(func() (bool, uint64, uint64) { return held[i], local[i], fallback[i] })
	}
	if got := c.LeaseHolders(); got != 1 {
		t.Fatalf("LeaseHolders = %d, want 1", got)
	}
	if got := c.LocalReads(); got != 120 {
		t.Fatalf("LocalReads = %d, want 120", got)
	}
	if got := c.FallbackReads(); got != 6 {
		t.Fatalf("FallbackReads = %d, want 6", got)
	}
	held[1] = false
	if got := c.LeaseHolders(); got != 0 {
		t.Fatalf("LeaseHolders after release = %d, want 0", got)
	}
}

func TestRecordFlushHistograms(t *testing.T) {
	c := New(2)
	c.RecordFlush(0, 1, 8, 1024)
	c.RecordFlush(1, 0, 32, 4096)
	frames := c.FlushFrames()
	if frames.Count != 2 {
		t.Fatalf("flush frames count = %d, want 2", frames.Count)
	}
	if got := int64(frames.Sum); got != 40 {
		t.Fatalf("flush frames sum = %d, want 40", got)
	}
	if got := int64(frames.Max); got != 32 {
		t.Fatalf("flush frames max = %d, want 32", got)
	}
	bytes := c.FlushBytes()
	if got := int64(bytes.Sum); got != 5120 {
		t.Fatalf("flush bytes sum = %d, want 5120", got)
	}
}

func TestPrometheusExportsLeaseAndFlush(t *testing.T) {
	c := New(2)
	c.WatchLease(func() (bool, uint64, uint64) { return true, 7, 1 })
	c.RecordFlush(0, 1, 8, 1024)
	var b strings.Builder
	c.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"rsm_lease_held 1",
		"rsm_reads_local_total 7",
		"rsm_reads_fallback_total 1",
		// Count-unit buckets: le in frames, not seconds. 8 frames land in
		// the half-open bucket [8,16), so the cumulative count first hits
		// 1 at le="16".
		`link_flush_frames_bucket{le="16"} 1`,
		"link_flush_frames_sum 8",
		"link_flush_bytes_sum 1024",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpIncludesLeaseAndFlush(t *testing.T) {
	c := New(2)
	c.WatchLease(func() (bool, uint64, uint64) { return true, 9, 2 })
	c.RecordFlush(0, 1, 16, 2048)
	d := c.Dump()
	if d.LeaseHolders != 1 || d.LocalReads != 9 || d.FallbackReads != 2 {
		t.Fatalf("dump lease fields = %d/%d/%d, want 1/9/2",
			d.LeaseHolders, d.LocalReads, d.FallbackReads)
	}
	h, ok := d.Histograms["flush_frames"]
	if !ok || h.Count != 1 || h.SumNS != 16 {
		t.Fatalf("dump flush_frames = %+v ok=%v, want count 1 sum 16", h, ok)
	}
}
