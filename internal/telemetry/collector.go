package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultQuiescenceWindow is the sliding window over which link activity
// is judged: a directed link is "active" if it carried a message within
// the window. One second comfortably covers every heartbeat period used
// in this repository while staying short enough that stabilization shows
// up within a couple of scrapes.
const DefaultQuiescenceWindow = time.Second

// Collector aggregates live telemetry for one cluster (or one simulator
// world): latency histograms fed from the observer pipeline and the
// leader/decision hooks, plus the steady-state quiescence gauges that
// assert the paper's n−1-links property at runtime.
//
// A Collector is an obs.Sink; tee it into a transport.Config.Observer (or
// a scenario/world observer) so it sees every message event. Leader
// transitions arrive via WatchOmega, decisions via WatchRecorder. All
// methods are safe for concurrent use; the per-message path is lock-free.
type Collector struct {
	n     int
	clock func() sim.Time
	stats *metrics.MessageStats
	win   time.Duration

	// hbKind marks the message kinds treated as heartbeats for
	// inter-arrival tracking; lastHB holds the previous delivery time per
	// directed link (n*n, flattened, -1 = none yet).
	hbKind [obs.MaxKinds]bool
	lastHB []atomic.Int64

	hbJitter    *Histogram // per-link heartbeat inter-arrival
	downtime    *Histogram // election downtime: leader change → next stable leader
	decision    *Histogram // proposer-side consensus decision latency
	flushFrames *Histogram // frames per vectored write (count-unit, see lease.go)
	flushBytes  *Histogram // payload bytes per vectored write (count-unit)
	walFsync    *Histogram // WAL fsync latency (see wal.go)
	walAppend   *Histogram // framed bytes per WAL append (count-unit)
	walRecovery *Histogram // snapshot-load + replay time per recovery

	// leaseProbes feed the read-path gauges (registered via WatchLease,
	// polled at scrape time under mu).
	leaseProbes []LeaseProbe

	// groups holds per-consensus-group series in sharded clusters,
	// registered via WatchGroupRecorder/WatchGroupLease (see group.go);
	// nil until the first registration. Guarded by mu.
	groups map[int]*groupSeries

	// Election tracker. Leader changes are rare (finitely many, after
	// GST), so a mutex is fine here; the message path never touches it.
	mu         sync.Mutex
	leaders    []node.ID
	down       []bool
	inDowntime bool
	downSince  sim.Time

	stableLeader  atomic.Int64 // current cluster-wide agreed leader, -1 while disputed
	lastElection  atomic.Int64 // sim.Time the current agreement formed, -1 before the first
	elections     atomic.Uint64
	leaderChanges atomic.Uint64
	decides       atomic.Uint64
}

var _ obs.Sink = (*Collector)(nil)

// Option customizes a Collector.
type Option func(*Collector)

// WithStats attaches the cluster's message accounting; the quiescence
// gauges (active links, non-leader sends) are derived from it at read
// time. Without it those gauges read zero.
func WithStats(s *metrics.MessageStats) Option {
	return func(c *Collector) { c.stats = s }
}

// WithClock overrides the collector's notion of "now", which must be on
// the same clock as the timestamps reported through the sink. The default
// is wall time since New, matching the live transports' cluster clock; a
// simulator world should pass its kernel clock.
func WithClock(fn func() sim.Time) Option {
	return func(c *Collector) { c.clock = fn }
}

// WithHeartbeatKinds replaces the set of message kinds whose deliveries
// feed the inter-arrival histogram. The default covers the repository's
// heartbeat kinds: LEADER (core), ALIVE (alltoall), ALIVE-V (source).
func WithHeartbeatKinds(names ...string) Option {
	return func(c *Collector) {
		c.hbKind = [obs.MaxKinds]bool{}
		for _, name := range names {
			c.hbKind[obs.Intern(name)] = true
		}
	}
}

// WithQuiescenceWindow sets the sliding window for the active-links gauge
// (default DefaultQuiescenceWindow).
func WithQuiescenceWindow(d time.Duration) Option {
	return func(c *Collector) {
		if d > 0 {
			c.win = d
		}
	}
}

// New returns a collector for an n-process system.
func New(n int, opts ...Option) *Collector {
	c := &Collector{
		n:           n,
		win:         DefaultQuiescenceWindow,
		lastHB:      make([]atomic.Int64, n*n),
		hbJitter:    NewHistogram("heartbeat_interarrival", n),
		downtime:    NewHistogram("election_downtime", 1),
		decision:    NewHistogram("decision_latency", n),
		flushFrames: NewHistogram("flush_frames", n),
		flushBytes:  NewHistogram("flush_bytes", n),
		walFsync:    NewHistogram("wal_fsync", n),
		walAppend:   NewHistogram("wal_append_bytes", n),
		walRecovery: NewHistogram("wal_recovery", n),
		leaders:     make([]node.ID, n),
		down:        make([]bool, n),
		inDowntime:  true, // the initial election counts, from time zero
	}
	for i := range c.leaders {
		c.leaders[i] = node.None
	}
	for i := range c.lastHB {
		c.lastHB[i].Store(-1)
	}
	c.stableLeader.Store(-1)
	c.lastElection.Store(-1)
	for _, name := range []string{"LEADER", "ALIVE", "ALIVE-V"} {
		c.hbKind[obs.Intern(name)] = true
	}
	start := time.Now()
	c.clock = func() sim.Time { return sim.Time(time.Since(start).Nanoseconds()) }
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// AttachStats attaches the cluster's message accounting after
// construction — for wiring orders where the stats object is created by
// the cluster the collector observes. Call during setup, before Serve and
// before the cluster starts.
func (c *Collector) AttachStats(s *metrics.MessageStats) { c.stats = s }

// SetClock replaces the collector's clock after construction (see
// WithClock) — the simulator wires its kernel clock here, which exists
// only after the world is built. Call during setup, before Serve.
func (c *Collector) SetClock(fn func() sim.Time) { c.clock = fn }

// N returns the process count the collector was built for.
func (c *Collector) N() int { return c.n }

// Now returns the collector's current time on the cluster clock.
func (c *Collector) Now() sim.Time { return c.clock() }

// QuiescenceWindow returns the sliding window used by ActiveLinks.
func (c *Collector) QuiescenceWindow() time.Duration { return c.win }

// --- obs.Sink -----------------------------------------------------------

// OnSend implements obs.Sink. Message counting lives in
// metrics.MessageStats; the collector only derives from it.
func (c *Collector) OnSend(t sim.Time, from, to int, kind obs.Kind) {}

// OnDeliver implements obs.Sink: deliveries of heartbeat kinds feed the
// per-link inter-arrival histogram. The path is lock-free and performs no
// allocation.
func (c *Collector) OnDeliver(t sim.Time, from, to int, kind obs.Kind) {
	if !c.hbKind[kind] {
		return
	}
	prev := c.lastHB[from*c.n+to].Swap(int64(t))
	if prev >= 0 && int64(t) >= prev {
		c.hbJitter.Record(to, time.Duration(int64(t)-prev))
	}
}

// OnDrop implements obs.Sink.
func (c *Collector) OnDrop(t sim.Time, from, to int, kind obs.Kind) {}

// --- leader/decision feeds ----------------------------------------------

// WatchOmega subscribes the collector to process id's leader-change
// stream. Call before the detector starts.
func (c *Collector) WatchOmega(id node.ID, h *detector.History) {
	c.LeaderChanged(0, id, h.Current())
	h.SetNotify(func(t sim.Time, leader node.ID) { c.LeaderChanged(t, id, leader) })
}

// WatchRecorder subscribes the collector to process id's decision stream.
// Call before the consensus automaton starts.
func (c *Collector) WatchRecorder(id node.ID, r *consensus.Recorder) {
	r.SetNotify(func(d consensus.Decision) { c.Decided(d) })
}

// LeaderChanged reports that process id's Omega output became leader at t.
// Downtime bookkeeping: the span from the instant cluster-wide agreement
// broke (or time zero, for the initial election) to the instant every
// live process outputs the same live leader again is one election's
// downtime.
func (c *Collector) LeaderChanged(t sim.Time, id node.ID, leader node.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaders[id] == leader {
		return
	}
	if leader != node.None {
		c.leaderChanges.Add(1)
	}
	c.leaders[id] = leader
	c.recomputeLocked(t)
}

// MarkDown excludes a crashed process from agreement tracking: its frozen
// leader output no longer blocks (or fakes) cluster-wide agreement, and a
// crashed leader immediately opens a downtime span — the paper's
// "leader-change → next stable leader" clock starts at the crash.
func (c *Collector) MarkDown(id node.ID) {
	t := c.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[id] {
		return
	}
	c.down[id] = true
	c.recomputeLocked(t)
}

// MarkUp returns a restarted process to agreement tracking. Its leader
// output restarts from "no output yet", so cluster-wide agreement is
// withheld until the rejoined process converges on the survivors' leader
// — the recovery-to-agreement span lands in the downtime histogram.
func (c *Collector) MarkUp(id node.ID) {
	t := c.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[id] {
		return
	}
	c.down[id] = false
	c.leaders[id] = node.None
	c.recomputeLocked(t)
}

// recomputeLocked re-derives cluster-wide agreement — every live process
// outputs the same live leader — and drives the downtime state machine.
// Callers hold c.mu.
func (c *Collector) recomputeLocked(t sim.Time) {
	leader := node.None
	agreed := true
	for id, l := range c.leaders {
		if c.down[id] {
			continue
		}
		if l == node.None {
			agreed = false
			break
		}
		if leader == node.None {
			leader = l
		} else if l != leader {
			agreed = false
			break
		}
	}
	if leader == node.None || int(leader) < len(c.down) && c.down[leader] {
		agreed = false
	}
	switch {
	case agreed && c.inDowntime:
		c.inDowntime = false
		c.downtime.Record(0, t.Sub(c.downSince))
		c.elections.Add(1)
		c.lastElection.Store(int64(t))
		c.stableLeader.Store(int64(leader))
	case agreed && c.stableLeader.Load() != int64(leader):
		// Every live process moved in lockstep: a zero-downtime election.
		c.downtime.Record(0, 0)
		c.elections.Add(1)
		c.lastElection.Store(int64(t))
		c.stableLeader.Store(int64(leader))
	case !agreed && !c.inDowntime:
		c.inDowntime = true
		c.downSince = t
		c.stableLeader.Store(-1)
	}
}

// Decided reports one learned consensus decision; proposer-side latency
// (Decision.Elapsed, when known) feeds the decision histogram.
func (c *Collector) Decided(d consensus.Decision) {
	c.decides.Add(1)
	if d.Elapsed > 0 {
		c.decision.Record(int(d.By), d.Elapsed)
	}
}

// --- gauges ---------------------------------------------------------------

// Leader returns the cluster-wide agreed leader, or (node.None, false)
// while processes disagree.
func (c *Collector) Leader() (node.ID, bool) {
	l := c.stableLeader.Load()
	if l < 0 {
		return node.None, false
	}
	return node.ID(l), true
}

// Elections returns how many times cluster-wide agreement has formed.
// This is the monotone "reign" epoch /healthz reports next to the leader.
func (c *Collector) Elections() uint64 { return c.elections.Load() }

// LeaderChanges returns the total per-process leader-output transitions.
func (c *Collector) LeaderChanges() uint64 { return c.leaderChanges.Load() }

// Decides returns the total decisions observed across watched recorders.
func (c *Collector) Decides() uint64 { return c.decides.Load() }

// TimeSinceLastElection returns how long the current agreement has held,
// or (0, false) if no cluster-wide agreement has formed yet.
func (c *Collector) TimeSinceLastElection() (time.Duration, bool) {
	at := c.lastElection.Load()
	if at < 0 {
		return 0, false
	}
	if _, ok := c.Leader(); !ok {
		return 0, false // mid-election: the previous reign is over
	}
	return c.Now().Sub(sim.Time(at)), true
}

// ActiveLinks returns how many distinct directed links carried at least
// one message within the quiescence window — the paper's steady-state
// claim is that this converges to exactly n−1. Zero without WithStats.
func (c *Collector) ActiveLinks() int {
	if c.stats == nil {
		return 0
	}
	since := c.Now() - sim.Time(c.win)
	if since < 0 {
		since = 0
	}
	return c.stats.LinksUsedSince(since)
}

// NonLeaderSends returns the total messages sent by every process other
// than the current stable leader, excluding the given kinds (pass
// core.KindAccuse to discount accusation traffic). While no stable leader
// exists, every process counts. Zero without WithStats.
//
// After stabilization this gauge must stop moving: only the leader sends.
func (c *Collector) NonLeaderSends(excludeKinds ...string) uint64 {
	if c.stats == nil {
		return 0
	}
	leader := c.stableLeader.Load()
	var total uint64
	for p := 0; p < c.n; p++ {
		if int64(p) == leader {
			continue
		}
		total += c.stats.SentBy(p)
		for _, kind := range excludeKinds {
			total -= c.stats.SentByKind(p, kind)
		}
	}
	return total
}

// HeartbeatJitter returns the merged heartbeat inter-arrival snapshot.
func (c *Collector) HeartbeatJitter() HistSnapshot { return c.hbJitter.Snapshot() }

// ElectionDowntime returns the merged election-downtime snapshot.
func (c *Collector) ElectionDowntime() HistSnapshot { return c.downtime.Snapshot() }

// DecisionLatency returns the merged decision-latency snapshot.
func (c *Collector) DecisionLatency() HistSnapshot { return c.decision.Snapshot() }

// Stats returns the attached message accounting (nil without WithStats).
func (c *Collector) Stats() *metrics.MessageStats { return c.stats }
