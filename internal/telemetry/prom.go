package telemetry

import (
	"fmt"
	"io"
)

// promHist writes one histogram in Prometheus exposition format, with
// cumulative le buckets in seconds. Power-of-two buckets export exactly:
// every observation in bucket b is < 2^b ns, so the cumulative count at
// le = 2^b ns is precise.
func promHist(w io.Writer, name string, s HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	promHistSeries(w, name, "", s)
}

// promHistSeries writes one labeled histogram series (buckets, sum, count)
// without the TYPE header, so several label sets — one per consensus group
// — share a single metric family. labels is either empty or a
// comma-terminated prefix like `group="2",`.
func promHistSeries(w io.Writer, name, labels string, s HistSnapshot) {
	var cum uint64
	top := 0
	for b, c := range s.Buckets {
		if c > 0 {
			top = b
		}
	}
	for b := 0; b <= top; b++ {
		cum += s.Buckets[b]
		le := float64(uint64(1)<<uint(b)) / 1e9
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, s.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		return
	}
	trimmed := labels[:len(labels)-1] // drop the trailing comma
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, trimmed, s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, trimmed, s.Count)
}

// promCountHist writes one count-unit histogram (frames, bytes — values
// recorded as raw counts, not nanoseconds) in Prometheus exposition
// format, with cumulative le buckets in the native unit.
func promCountHist(w io.Writer, name string, s HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	top := 0
	for b, c := range s.Buckets {
		if c > 0 {
			top = b
		}
	}
	for b := 0; b <= top; b++ {
		cum += s.Buckets[b]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, uint64(1)<<uint(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, int64(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WritePrometheus writes the collector's full state in Prometheus text
// exposition format: message counters (from the attached MessageStats),
// the quiescence gauges, and the three latency histograms.
func (c *Collector) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	if st := c.stats; st != nil {
		counter("omega_sent_total", "Messages handed to the links.", st.TotalSent())
		counter("omega_delivered_total", "Messages delivered.", st.Delivered())
		counter("omega_dropped_total", "Messages lost in transit.", st.Dropped())
		counter("omega_wire_bytes_total", "Encoded bytes handed to the links.", st.WireBytes())
		fmt.Fprintf(w, "# HELP omega_sent_kind_total Messages sent per kind.\n# TYPE omega_sent_kind_total counter\n")
		for _, kind := range st.Kinds() {
			fmt.Fprintf(w, "omega_sent_kind_total{kind=%q} %d\n", kind, st.KindCount(kind))
		}
		fmt.Fprintf(w, "# HELP omega_sent_by_total Messages sent per process.\n# TYPE omega_sent_by_total counter\n")
		for p := 0; p < c.n; p++ {
			fmt.Fprintf(w, "omega_sent_by_total{process=\"%d\"} %d\n", p, st.SentBy(p))
		}
	}

	// Quiescence: the paper's steady-state claim, as scrapeable gauges.
	// After stabilization active_links must read n-1 and
	// non_leader_sends_total must stop moving.
	gauge("omega_active_links",
		"Directed links that carried a message within the quiescence window.",
		float64(c.ActiveLinks()))
	gauge("omega_quiescence_window_seconds",
		"Sliding window used by omega_active_links.", c.win.Seconds())
	gauge("omega_non_leader_sends_total",
		"Messages sent by processes other than the stable leader.",
		float64(c.NonLeaderSends()))

	leader, agreed := c.Leader()
	l := float64(-1)
	if agreed {
		l = float64(leader)
	}
	gauge("omega_leader", "Cluster-wide agreed leader id, -1 while disputed.", l)
	sinceS := float64(-1)
	if since, ok := c.TimeSinceLastElection(); ok {
		sinceS = since.Seconds()
	}
	gauge("omega_time_since_last_election_seconds",
		"How long the current agreement has held, -1 before the first.", sinceS)
	counter("omega_elections_total", "Times cluster-wide agreement formed.", c.Elections())
	counter("omega_leader_changes_total", "Per-process leader-output transitions.", c.LeaderChanges())
	counter("omega_decides_total", "Consensus decisions learned across watched recorders.", c.Decides())

	// Read path: lease occupancy and the local/fallback split. Local reads
	// cost zero consensus messages; their ratio against fallbacks is the
	// tentpole's headline number.
	held, local, fallback := c.leaseSnapshot()
	gauge("rsm_lease_held",
		"Watched processes currently holding the leader lease (0 or 1 when healthy).",
		float64(held))
	counter("rsm_reads_local_total",
		"Reads served locally under a lease, with zero consensus messages.", local)
	counter("rsm_reads_fallback_total",
		"Reads that took the phase-2 no-op barrier.", fallback)

	promHist(w, "omega_election_downtime_seconds", c.ElectionDowntime())
	promHist(w, "omega_decision_latency_seconds", c.DecisionLatency())
	promHist(w, "omega_heartbeat_interarrival_seconds", c.HeartbeatJitter())
	promCountHist(w, "link_flush_frames", c.FlushFrames())
	promCountHist(w, "link_flush_bytes", c.FlushBytes())

	// Durability: WAL write amplification and the price of surviving
	// kill -9 — fsync latency on the commit path, recovery time on boot.
	promHist(w, "wal_fsync_seconds", c.FsyncLatency())
	promCountHist(w, "wal_append_bytes", c.WALAppendBytes())
	promHist(w, "wal_recovery_seconds", c.RecoveryTime())

	// Sharded clusters: per-group decision latency and lease occupancy,
	// labeled by group so one slow or lease-less shard stays visible.
	if ids := c.GroupIDs(); len(ids) > 0 {
		fmt.Fprintf(w, "# TYPE rsm_group_decision_latency_seconds histogram\n")
		for _, g := range ids {
			promHistSeries(w, "rsm_group_decision_latency_seconds",
				fmt.Sprintf("group=\"%d\",", g), c.GroupDecisionLatency(g))
		}
		fmt.Fprintf(w, "# HELP rsm_group_lease_held Processes holding each group's lease (0 or 1 per group when healthy).\n# TYPE rsm_group_lease_held gauge\n")
		for _, g := range ids {
			held, _, _ := c.groupLeaseSnapshot(g)
			fmt.Fprintf(w, "rsm_group_lease_held{group=\"%d\"} %d\n", g, held)
		}
		fmt.Fprintf(w, "# TYPE rsm_group_reads_local_total counter\n# TYPE rsm_group_reads_fallback_total counter\n")
		for _, g := range ids {
			_, local, fallback := c.groupLeaseSnapshot(g)
			fmt.Fprintf(w, "rsm_group_reads_local_total{group=\"%d\"} %d\n", g, local)
			fmt.Fprintf(w, "rsm_group_reads_fallback_total{group=\"%d\"} %d\n", g, fallback)
		}
	}
}
