package telemetry

import (
	"time"

	"repro/internal/node"
)

// This file is the durability view: fsync latency, WAL append sizes, and
// recovery time, sharded by process like every other histogram here. The
// hooks match internal/durable's Options callbacks field for field, so a
// WAL wires in with DurableHooks and the collector never imports durable.

// RecordFsync feeds one WAL fsync's latency. Safe for concurrent use from
// node loops and snapshot paths.
func (c *Collector) RecordFsync(id node.ID, d time.Duration) {
	c.walFsync.Record(int(id), d)
}

// RecordWALAppend feeds one appended record's framed size (count-unit:
// the histogram's "ns" values are bytes).
func (c *Collector) RecordWALAppend(id node.ID, bytes int) {
	c.walAppend.Record(int(id), time.Duration(bytes))
}

// RecordRecovery feeds one recovery's duration — the snapshot-load plus
// WAL-replay time observed by durable.Open.
func (c *Collector) RecordRecovery(id node.ID, d time.Duration) {
	c.walRecovery.Record(int(id), d)
}

// DurableHooks returns the three observer callbacks for one process's
// durable.Options (OnAppend, OnFsync, OnRecover), bound to process id.
func (c *Collector) DurableHooks(id node.ID) (onAppend func(int), onFsync, onRecover func(time.Duration)) {
	return func(bytes int) { c.RecordWALAppend(id, bytes) },
		func(d time.Duration) { c.RecordFsync(id, d) },
		func(d time.Duration) { c.RecordRecovery(id, d) }
}

// FsyncLatency returns the merged WAL fsync latency snapshot.
func (c *Collector) FsyncLatency() HistSnapshot { return c.walFsync.Snapshot() }

// WALAppendBytes returns the merged append-size snapshot (count-unit:
// durations are framed bytes per record).
func (c *Collector) WALAppendBytes() HistSnapshot { return c.walAppend.Snapshot() }

// RecoveryTime returns the merged recovery-duration snapshot.
func (c *Collector) RecoveryTime() HistSnapshot { return c.walRecovery.Snapshot() }
